// Partitioning (§III-A): the Fig. 3 example and the paper's case analysis
// (§III-C cases 1 through 4), plus the correctness-preserving deviations
// documented in decode/partition.h.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "codes/lrc_code.h"
#include "codes/sd_code.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "decode/plan.h"

namespace ppm {
namespace {

Partition partition_of(const ErasureCode& code,
                       std::vector<std::size_t> faulty) {
  std::sort(faulty.begin(), faulty.end());
  const LogTable table = LogTable::build(code.parity_check(), faulty);
  return make_partition(code.parity_check(), table);
}

TEST(Partition, Fig3Example) {
  // Faults {2,6,10,13,14} -> p = 3 singleton groups from rows 0,1,2; rows
  // 3 and 4 form H_rest recovering {13, 14}.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const Partition part = partition_of(code, {2, 6, 10, 13, 14});

  ASSERT_EQ(part.p(), 3u);
  EXPECT_EQ(part.groups[0].faulty_cols, (std::vector<std::size_t>{2}));
  EXPECT_EQ(part.groups[0].rows, (std::vector<std::size_t>{0}));
  EXPECT_EQ(part.groups[1].faulty_cols, (std::vector<std::size_t>{6}));
  EXPECT_EQ(part.groups[1].rows, (std::vector<std::size_t>{1}));
  EXPECT_EQ(part.groups[2].faulty_cols, (std::vector<std::size_t>{10}));
  EXPECT_EQ(part.groups[2].rows, (std::vector<std::size_t>{2}));
  EXPECT_EQ(part.rest_rows, (std::vector<std::size_t>{3, 4}));
  EXPECT_EQ(part.rest_faulty, (std::vector<std::size_t>{13, 14}));
}

TEST(Partition, Case1NoIndependentSubmatrix) {
  // All faults in one stripe row of an m=1 code, more faults than row
  // equations can separate: every check row touching them shares nothing.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  // Faults {0,1}: row 0 has signature {0,1}, global row {0,1} too ->
  // bucket of size 2 with t=2 -> it IS a group; pick a case that isn't:
  // faults {0, 1, 2}: row 0 signature {0,1,2}, global {0,1,2}; only two
  // rows for t=3 -> p=0.
  const Partition part = partition_of(code, {0, 1, 2});
  EXPECT_EQ(part.p(), 0u);
  EXPECT_EQ(part.rest_faulty, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(part.rest_rows, (std::vector<std::size_t>{0, 4}));
}

TEST(Partition, Case2SingleIndependentSubmatrix) {
  // One fault: row 0 and the global row both have signature {0}; that
  // bucket yields one group (the surplus row is consumed as redundant).
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const Partition part = partition_of(code, {0});
  ASSERT_EQ(part.p(), 1u);
  EXPECT_EQ(part.groups[0].faulty_cols, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(part.rest_empty());
  EXPECT_TRUE(part.rest_rows.empty());
}

TEST(Partition, Case31NoRest) {
  // One fault per stripe row (distinct rows): every fault is independent,
  // H_rest is empty but the global row is consumed by nothing — it still
  // touches all faults, so it lands in no group; with all faults covered it
  // must be dropped from rest.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const Partition part = partition_of(code, {0, 5, 10, 15});
  EXPECT_EQ(part.p(), 4u);
  EXPECT_TRUE(part.rest_empty());
  EXPECT_TRUE(part.rest_rows.empty());
}

TEST(Partition, Case4MaximumParallelism) {
  // LRC with one fault in each local group and nothing else: p equals the
  // number of groups and H_rest is empty (every global row touches all
  // faults but those are covered).
  const LRCCode code(8, 4, 2, 8);
  const Partition part = partition_of(code, {0, 2, 4, 6});
  EXPECT_EQ(part.p(), 4u);
  EXPECT_TRUE(part.rest_empty());
}

TEST(Partition, PairGroupFromMatchingSignatures) {
  // m=2 SD code, two faults in the same stripe row: both row equations
  // have signature {f1, f2} -> a 2x2 independent group.
  const SDCode code(6, 4, 2, 1, 8);
  const Partition part = partition_of(code, {0, 3});
  ASSERT_EQ(part.p(), 1u);
  EXPECT_EQ(part.groups[0].faulty_cols, (std::vector<std::size_t>{0, 3}));
  EXPECT_EQ(part.groups[0].rows, (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(part.rest_empty());
}

TEST(Partition, GroupsAreDisjoint) {
  const SDCode code(6, 8, 2, 2, 8);
  const Partition part = partition_of(code, {0, 1, 8, 14, 20, 27, 33, 40});
  std::set<std::size_t> seen;
  for (const IndependentGroup& g : part.groups) {
    EXPECT_EQ(g.rows.size(), g.faulty_cols.size());
    for (const std::size_t c : g.faulty_cols) {
      EXPECT_TRUE(seen.insert(c).second) << "block " << c << " twice";
    }
  }
  for (const std::size_t c : part.rest_faulty) {
    EXPECT_TRUE(seen.insert(c).second);
  }
}

TEST(Partition, GroupRowsTouchNoForeignFaults) {
  // Definition of independence: a group row's faulty columns are exactly
  // the group's blocks.
  const SDCode code(8, 8, 2, 3, 8);
  const std::vector<std::size_t> faulty{1, 9, 17, 25, 33, 41, 49, 57, 12, 20,
                                        28};
  const Partition part = partition_of(code, faulty);
  std::vector<std::size_t> sorted_faulty(faulty);
  std::sort(sorted_faulty.begin(), sorted_faulty.end());
  const Matrix& h = code.parity_check();
  for (const IndependentGroup& g : part.groups) {
    for (const std::size_t row : g.rows) {
      for (const std::size_t c : sorted_faulty) {
        const bool in_group = std::binary_search(g.faulty_cols.begin(),
                                                 g.faulty_cols.end(), c);
        if (!in_group) {
          EXPECT_EQ(h(row, c), 0u) << "row " << row << " col " << c;
        }
      }
    }
  }
}

TEST(Partition, RestRowsAllTouchRestFaults) {
  const SDCode code(6, 4, 1, 2, 8);
  const Partition part = partition_of(code, {0, 7, 13, 14, 20});
  const Matrix& h = code.parity_check();
  for (const std::size_t row : part.rest_rows) {
    bool touches = false;
    for (const std::size_t c : part.rest_faulty) touches |= (h(row, c) != 0);
    EXPECT_TRUE(touches) << "useless rest row " << row;
  }
}

TEST(Partition, SdParallelismEqualsRMinusZ) {
  // Paper §IV: for SD codes with the worst-case failure pattern, p = r - z.
  const SDCode code(8, 8, 2, 2, 8);
  // 2 failed disks (0, 1) and s=2 sectors in z=1 row (row 7, disks 2 and 3).
  std::vector<std::size_t> faulty;
  for (std::size_t i = 0; i < 8; ++i) {
    faulty.push_back(i * 8 + 0);
    faulty.push_back(i * 8 + 1);
  }
  faulty.push_back(7 * 8 + 2);
  faulty.push_back(7 * 8 + 3);
  const Partition part = partition_of(code, faulty);
  EXPECT_EQ(part.p(), 7u);  // r - z = 8 - 1
  EXPECT_FALSE(part.rest_empty());
}

TEST(Partition, ZeroColumnFaultSurfacesAsDependent) {
  // Regression (found by the random-code fuzzer): a faulty block whose H
  // column is all zero appears in no log-table row; it must still surface
  // in rest_faulty so the decode fails instead of silently skipping it.
  const gf::Field& f = gf::field(8);
  Matrix h(f, 2, 4, {1, 1, 0, 0, 0, 1, 0, 1});  // column 2 is all zero
  const std::vector<std::size_t> faulty{0, 2};
  const LogTable table = LogTable::build(h, faulty);
  const Partition part = make_partition(h, table);
  EXPECT_TRUE(std::binary_search(part.rest_faulty.begin(),
                                 part.rest_faulty.end(), 2u));
  // And the resulting rest system is correctly unsolvable.
  EXPECT_FALSE(SubPlan::make(h, part.rest_rows, part.rest_faulty,
                             part.rest_faulty, Sequence::kNormal)
                   .has_value());
}

TEST(Partition, EmptyFaultSetYieldsEmptyPartition) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const Partition part = partition_of(code, {});
  EXPECT_EQ(part.p(), 0u);
  EXPECT_TRUE(part.rest_empty());
  EXPECT_TRUE(part.rest_rows.empty());
}

}  // namespace
}  // namespace ppm
