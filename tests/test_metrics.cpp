// Metrics primitives: counters, the log2 latency histogram, JSON export.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace ppm {
namespace {

TEST(Counter, AddAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, ConcurrentAddsSum) {
  Counter c;
  std::vector<std::jthread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  threads.clear();  // join
  EXPECT_EQ(c.value(), 40000u);
}

TEST(LatencyHistogram, BucketOfIsLog2) {
  EXPECT_EQ(LatencyHistogram::bucket_of(0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_of(2), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(3), 1u);
  EXPECT_EQ(LatencyHistogram::bucket_of(4), 2u);
  EXPECT_EQ(LatencyHistogram::bucket_of(1024), 10u);
  EXPECT_EQ(LatencyHistogram::bucket_of(~std::uint64_t{0}), 63u);
}

TEST(LatencyHistogram, CountSumMax) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_seconds(0.5), 0.0);
  h.record_nanos(1000);
  h.record_nanos(2000);
  h.record_nanos(3000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.total_seconds(), 6000e-9);
  EXPECT_DOUBLE_EQ(h.mean_seconds(), 2000e-9);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 3000e-9);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max_seconds(), 0.0);
}

TEST(LatencyHistogram, QuantilesAreMonotonicAndBracketed) {
  LatencyHistogram h;
  for (std::uint64_t ns = 1; ns <= 1000000; ns *= 2) h.record_nanos(ns);
  double prev = 0;
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0}) {
    const double v = h.quantile_seconds(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  // Everything recorded is <= 1ms; bucket interpolation can at most
  // reach the top bucket's ceiling (2x the floor).
  EXPECT_LE(h.quantile_seconds(1.0), 2e-3);
  EXPECT_GT(h.quantile_seconds(0.5), 0.0);
}

TEST(LatencyHistogram, QuantileInterpolationIsPinned) {
  // Satellite: p50/p99/p999 derivation, pinned against hand-computed
  // linear interpolation. 4 samples of 20ns land in bucket [16,32), 4
  // samples of 100ns in [64,128); total 8.
  LatencyHistogram h;
  for (int i = 0; i < 4; ++i) h.record_nanos(20);
  for (int i = 0; i < 4; ++i) h.record_nanos(100);
  // p50: rank = 0.5 * 7 = 3.5 -> frac 3.5/4 in [16,32) -> 16 + 0.875*16.
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.5), 30e-9);
  // p999: rank = 6.993 -> frac 2.993/4 in [64,128) -> 111.9ns, clamped
  // to the observed max of 100ns (interpolation never exceeds max).
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.999), 100e-9);
  EXPECT_DOUBLE_EQ(h.quantile_seconds(0.999), h.max_seconds());

  // Unclamped interpolation, exact within fp error: 1000 samples of 20ns
  // + one 100ns outlier; p50 rank = 0.5*1000 = 500 -> 16 + (500/1000)*16.
  LatencyHistogram g;
  for (int i = 0; i < 1000; ++i) g.record_nanos(20);
  g.record_nanos(100);
  EXPECT_NEAR(g.quantile_seconds(0.5), 24e-9, 1e-15);
}

TEST(LatencyHistogram, JsonCarriesP999) {
  LatencyHistogram h;
  for (int i = 0; i < 4; ++i) h.record_nanos(20);
  for (int i = 0; i < 4; ++i) h.record_nanos(100);
  std::string out;
  h.append_json(out);
  EXPECT_NE(out.find("\"p999_s\":1e-07"), std::string::npos) << out;
  // Derived quantiles stay ordered in the serialized form too.
  EXPECT_LT(out.find("\"p50_s\""), out.find("\"p95_s\""));
  EXPECT_LT(out.find("\"p95_s\""), out.find("\"p99_s\""));
  EXPECT_LT(out.find("\"p99_s\""), out.find("\"p999_s\""));
  EXPECT_LT(out.find("\"p999_s\""), out.find("\"max_s\""));
}

TEST(LatencyHistogram, RecordSecondsRoundTrips) {
  LatencyHistogram h;
  h.record_seconds(0.001);  // 1e6 ns -> bucket 19 ([524288, 1048576))
  EXPECT_EQ(h.bucket_count(LatencyHistogram::bucket_of(1000000)), 1u);
  h.record_seconds(-1.0);  // clamped to 0
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LatencyHistogram, JsonListsNonEmptyBuckets) {
  LatencyHistogram h;
  h.record_nanos(10);
  h.record_nanos(10);
  std::string out;
  h.append_json(out);
  EXPECT_NE(out.find("\"count\":2"), std::string::npos) << out;
  EXPECT_NE(out.find("\"buckets\":[[8,2]]"), std::string::npos) << out;
}

TEST(CodecMetrics, JsonHasStableKeys) {
  CodecMetrics m;
  m.plan_hits.add(3);
  m.plan_misses.add(2);
  m.plan_evictions.add(1);
  m.mult_xors.add(29);
  m.decode_seconds.record_nanos(100);
  const std::string json = m.to_json();
  for (const char* key :
       {"\"plan_cache\"", "\"hits\":3", "\"misses\":2", "\"evictions\":1",
        "\"failures\":0", "\"decode\"", "\"mult_xors\":29", "\"latency\"",
        "\"batch\"", "\"plan\"", "\"p50_s\"", "\"p99_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  m.reset();
  EXPECT_EQ(m.plan_hits.value(), 0u);
  EXPECT_EQ(m.decode_seconds.count(), 0u);
}

}  // namespace
}  // namespace ppm
