// Traditional whole-matrix decoder: round trips, sequence policies, stats.
#include <gtest/gtest.h>

#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "codes/sd_code.h"
#include "decode/cost_model.h"
#include "decode/traditional_decoder.h"
#include "test_util.h"
#include "workload/scenario_gen.h"
#include "workload/stripe.h"

namespace ppm {
namespace {

TEST(TraditionalDecoder, EncodeProducesZeroSyndrome) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 1024);
  Rng rng(41);
  stripe.fill_data(rng);
  const TraditionalDecoder dec(code);
  ASSERT_TRUE(dec.encode(stripe.block_ptrs(), stripe.block_bytes()));
  // H * B must vanish on every symbol of every check row.
  const Matrix& h = code.parity_check();
  const gf::Field& f = code.field();
  std::vector<std::uint8_t> syndrome(stripe.block_bytes());
  for (std::size_t row = 0; row < h.rows(); ++row) {
    std::fill(syndrome.begin(), syndrome.end(), 0);
    for (std::size_t b = 0; b < code.total_blocks(); ++b) {
      if (h(row, b) != 0) {
        f.mult_region_xor(syndrome.data(), stripe.block(b), h(row, b),
                          stripe.block_bytes());
      }
    }
    EXPECT_EQ(syndrome, std::vector<std::uint8_t>(stripe.block_bytes(), 0))
        << "check row " << row;
  }
}

TEST(TraditionalDecoder, RoundTripBothSequences) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 1024);
  const auto snap = test::fill_and_encode(code, stripe, 42);
  ScenarioGenerator gen(43);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  const TraditionalDecoder dec(code);
  for (const auto policy :
       {SequencePolicy::kNormal, SequencePolicy::kMatrixFirst,
        SequencePolicy::kAuto}) {
    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(g.scenario);
    const auto res = dec.decode(g.scenario, stripe.block_ptrs(),
                                stripe.block_bytes(), policy);
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(stripe.equals(snap));
  }
}

TEST(TraditionalDecoder, StatsMatchCostModel) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 44);
  ScenarioGenerator gen(45);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  const auto costs = analyze_costs(code, g.scenario);
  ASSERT_TRUE(costs.has_value());
  const TraditionalDecoder dec(code);

  stripe.erase(g.scenario);
  const auto normal = dec.decode(g.scenario, stripe.block_ptrs(),
                                 stripe.block_bytes(),
                                 SequencePolicy::kNormal);
  ASSERT_TRUE(normal.has_value());
  EXPECT_EQ(normal->stats.mult_xors, costs->c1);
  EXPECT_EQ(normal->sequence_used, Sequence::kNormal);

  stripe.erase(g.scenario);
  const auto mf = dec.decode(g.scenario, stripe.block_ptrs(),
                             stripe.block_bytes(),
                             SequencePolicy::kMatrixFirst);
  ASSERT_TRUE(mf.has_value());
  EXPECT_EQ(mf->stats.mult_xors, costs->c2);
}

TEST(TraditionalDecoder, AutoPicksCheaperSequence) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 46);
  ScenarioGenerator gen(47);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  const auto costs = analyze_costs(code, g.scenario);
  ASSERT_TRUE(costs.has_value());
  stripe.erase(g.scenario);
  const TraditionalDecoder dec(code);
  const auto res = dec.decode(g.scenario, stripe.block_ptrs(),
                              stripe.block_bytes(), SequencePolicy::kAuto);
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->stats.mult_xors, std::min(costs->c1, costs->c2));
  EXPECT_EQ(res->sequence_used, costs->c2 < costs->c1
                                    ? Sequence::kMatrixFirst
                                    : Sequence::kNormal);
}

TEST(TraditionalDecoder, UndecodableScenarioReturnsNullopt) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 48);
  const TraditionalDecoder dec(code);
  // Three faults in one row exceed what one row equation + one global
  // equation can solve.
  const FailureScenario sc({0, 1, 2});
  EXPECT_FALSE(
      dec.decode(sc, stripe.block_ptrs(), stripe.block_bytes()).has_value());
}

TEST(TraditionalDecoder, EmptyScenarioIsNoOp) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 49);
  const TraditionalDecoder dec(code);
  const auto res =
      dec.decode(FailureScenario{}, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->stats.mult_xors, 0u);
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(TraditionalDecoder, LrcAndRsRoundTrips) {
  {
    const LRCCode code(12, 3, 2, 8);
    Stripe stripe(code, 1024);
    const auto snap = test::fill_and_encode(code, stripe, 50);
    ScenarioGenerator gen(51);
    const auto g = gen.lrc_failures(code, 2, 1);
    stripe.erase(g.scenario);
    const TraditionalDecoder dec(code);
    ASSERT_TRUE(
        dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes()));
    EXPECT_TRUE(stripe.equals(snap));
  }
  {
    const RSCode code(10, 4, 8);
    Stripe stripe(code, 1024);
    const auto snap = test::fill_and_encode(code, stripe, 52);
    ScenarioGenerator gen(53);
    const auto g = gen.rs_failures(code, 4);
    stripe.erase(g.scenario);
    const TraditionalDecoder dec(code);
    ASSERT_TRUE(
        dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes()));
    EXPECT_TRUE(stripe.equals(snap));
  }
}

}  // namespace
}  // namespace ppm
