// Region kernels: every (width × ISA level) family against the per-symbol
// reference, across sizes, alignments and constants, plus the fast paths.
#include <gtest/gtest.h>

#include <tuple>

#include "common/cpu.h"
#include "common/rng.h"
#include "gf/galois_field.h"
#include "test_util.h"

namespace ppm::gf {
namespace {

using test::random_bytes;
using test::reference_mult_xor;

class RegionKernelTest
    : public ::testing::TestWithParam<std::tuple<unsigned, IsaLevel>> {
 protected:
  const Field& f() const { return field(std::get<0>(GetParam())); }
  IsaLevel isa() const { return std::get<1>(GetParam()); }
};

TEST_P(RegionKernelTest, MatchesReferenceAcrossSizes) {
  Rng rng(11);
  const unsigned sym = f().symbol_bytes();
  for (const std::size_t symbols :
       {std::size_t{1}, std::size_t{3}, std::size_t{4}, std::size_t{15},
        std::size_t{16}, std::size_t{17}, std::size_t{64}, std::size_t{333},
        std::size_t{1024}}) {
    const std::size_t bytes = symbols * sym;
    auto src = random_bytes(rng, bytes);
    auto expect = random_bytes(rng, bytes);
    auto actual = expect;
    const Element c =
        (static_cast<Element>(rng.next()) & f().max_element()) | 2;
    reference_mult_xor(f(), expect.data(), src.data(), c, bytes);
    f().mult_region_xor_isa(actual.data(), src.data(), c, bytes, isa());
    EXPECT_EQ(actual, expect) << "symbols=" << symbols << " c=" << c;
  }
}

TEST_P(RegionKernelTest, MatchesReferenceUnaligned) {
  Rng rng(12);
  const unsigned sym = f().symbol_bytes();
  const std::size_t bytes = 257 * sym;
  // Offset both operands off any vector boundary (by whole symbols, since
  // regions are symbol arrays).
  auto src_buf = random_bytes(rng, bytes + 64);
  auto dst_buf = random_bytes(rng, bytes + 64);
  const std::size_t off = sym;  // 1 symbol in: breaks 16/32-byte alignment
  auto expect = dst_buf;
  const Element c = (static_cast<Element>(rng.next()) & f().max_element()) | 2;
  reference_mult_xor(f(), expect.data() + off, src_buf.data() + off, c, bytes);
  f().mult_region_xor_isa(dst_buf.data() + off, src_buf.data() + off, c,
                          bytes, isa());
  EXPECT_EQ(dst_buf, expect);
}

TEST_P(RegionKernelTest, EveryConstantSmallRegion) {
  // For w=8, sweep every constant; wider fields sample.
  Rng rng(13);
  const unsigned sym = f().symbol_bytes();
  const std::size_t bytes = 48 * sym;
  const auto src = random_bytes(rng, bytes);
  const std::size_t sweep = f().w() == 8 ? 256 : 500;
  for (std::size_t i = 0; i < sweep; ++i) {
    const Element c =
        f().w() == 8 ? static_cast<Element>(i)
                     : (static_cast<Element>(rng.next()) & f().max_element());
    auto expect = random_bytes(rng, bytes);
    auto actual = expect;
    reference_mult_xor(f(), expect.data(), src.data(), c, bytes);
    f().mult_region_xor_isa(actual.data(), src.data(), c, bytes, isa());
    ASSERT_EQ(actual, expect) << "c=" << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, RegionKernelTest,
    ::testing::Combine(::testing::Values(8u, 16u, 32u),
                       ::testing::Values(IsaLevel::kScalar, IsaLevel::kSsse3,
                                         IsaLevel::kAvx2, IsaLevel::kAvx512)),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_" +
             isa_name(std::get<1>(info.param));
    });

class RegionSemanticsTest : public ::testing::TestWithParam<unsigned> {
 protected:
  const Field& f() const { return field(GetParam()); }
};

TEST_P(RegionSemanticsTest, ZeroConstantIsNoOp) {
  Rng rng(14);
  const std::size_t bytes = 128 * f().symbol_bytes();
  const auto src = random_bytes(rng, bytes);
  auto dst = random_bytes(rng, bytes);
  const auto before = dst;
  f().mult_region_xor(dst.data(), src.data(), 0, bytes);
  EXPECT_EQ(dst, before);
}

TEST_P(RegionSemanticsTest, OneConstantIsXor) {
  Rng rng(15);
  const std::size_t bytes = 128 * f().symbol_bytes();
  const auto src = random_bytes(rng, bytes);
  auto dst = random_bytes(rng, bytes);
  auto expect = dst;
  for (std::size_t i = 0; i < bytes; ++i) expect[i] ^= src[i];
  f().mult_region_xor(dst.data(), src.data(), 1, bytes);
  EXPECT_EQ(dst, expect);
}

TEST_P(RegionSemanticsTest, XorTwiceRestoresDestination) {
  Rng rng(16);
  const std::size_t bytes = 96 * f().symbol_bytes();
  const auto src = random_bytes(rng, bytes);
  auto dst = random_bytes(rng, bytes);
  const auto before = dst;
  const Element c = (static_cast<Element>(rng.next()) & f().max_element()) | 2;
  f().mult_region_xor(dst.data(), src.data(), c, bytes);
  EXPECT_NE(dst, before);
  f().mult_region_xor(dst.data(), src.data(), c, bytes);
  EXPECT_EQ(dst, before);  // characteristic 2: adding twice cancels
}

TEST_P(RegionSemanticsTest, MultOverwriteMatchesXorIntoZero) {
  Rng rng(17);
  const std::size_t bytes = 80 * f().symbol_bytes();
  const auto src = random_bytes(rng, bytes);
  const Element c = (static_cast<Element>(rng.next()) & f().max_element()) | 2;
  std::vector<std::uint8_t> a(bytes, 0);
  f().mult_region_xor(a.data(), src.data(), c, bytes);
  auto b = random_bytes(rng, bytes);  // stale garbage must be overwritten
  f().mult_region(b.data(), src.data(), c, bytes);
  EXPECT_EQ(a, b);
}

TEST_P(RegionSemanticsTest, MultOverwriteZeroConstantClears) {
  Rng rng(18);
  const std::size_t bytes = 64 * f().symbol_bytes();
  const auto src = random_bytes(rng, bytes);
  auto dst = random_bytes(rng, bytes);
  f().mult_region(dst.data(), src.data(), 0, bytes);
  EXPECT_EQ(dst, std::vector<std::uint8_t>(bytes, 0));
}

TEST_P(RegionSemanticsTest, LinearityOverRegions) {
  // c*(x ^ y) == c*x ^ c*y applied to regions.
  Rng rng(19);
  const std::size_t bytes = 64 * f().symbol_bytes();
  const auto x = random_bytes(rng, bytes);
  const auto y = random_bytes(rng, bytes);
  const Element c = (static_cast<Element>(rng.next()) & f().max_element()) | 2;
  std::vector<std::uint8_t> xy(bytes);
  for (std::size_t i = 0; i < bytes; ++i) xy[i] = x[i] ^ y[i];
  std::vector<std::uint8_t> lhs(bytes, 0);
  f().mult_region_xor(lhs.data(), xy.data(), c, bytes);
  std::vector<std::uint8_t> rhs(bytes, 0);
  f().mult_region_xor(rhs.data(), x.data(), c, bytes);
  f().mult_region_xor(rhs.data(), y.data(), c, bytes);
  EXPECT_EQ(lhs, rhs);
}

INSTANTIATE_TEST_SUITE_P(AllWidths, RegionSemanticsTest,
                         ::testing::Values(8u, 16u, 32u),
                         [](const auto& info) {
                           return "w" + std::to_string(info.param);
                         });

TEST(XorRegion, MatchesByteWiseXor) {
  Rng rng(20);
  for (const std::size_t bytes : {std::size_t{1}, std::size_t{31},
                                  std::size_t{32}, std::size_t{1000}}) {
    const auto src = random_bytes(rng, bytes);
    auto dst = random_bytes(rng, bytes);
    auto expect = dst;
    for (std::size_t i = 0; i < bytes; ++i) expect[i] ^= src[i];
    xor_region(dst.data(), src.data(), bytes);
    EXPECT_EQ(dst, expect) << "bytes=" << bytes;
  }
}

TEST(KernelDispatch, RequestsAreCappedAtDetectedLevel) {
  // kernels_for must never hand out a higher level than detect_isa().
  const IsaLevel avail = detect_isa();
  for (unsigned w : {8u, 16u, 32u}) {
    const RegionKernels& k = kernels_for(w, IsaLevel::kAvx2);
    EXPECT_NE(k.mult_xor, nullptr);
    EXPECT_NE(k.mult_over, nullptr);
    EXPECT_NE(k.xor_region, nullptr);
    if (avail == IsaLevel::kScalar) {
      EXPECT_EQ(k.mult_xor, kernels_for(w, IsaLevel::kScalar).mult_xor);
    }
  }
  EXPECT_THROW(kernels_for(9, IsaLevel::kScalar), std::invalid_argument);
}

}  // namespace
}  // namespace ppm::gf
