// Resilient decode pipeline: retry/backoff math, deadline behavior,
// escalation, partial recovery and CRC verification.
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <vector>

#include "codec/codec.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "common/crc32.h"
#include "common/timer.h"
#include "io/block_source.h"
#include "io/fault_injection.h"
#include "test_util.h"

namespace ppm {
namespace {

using io::FaultInjectingSource;
using io::FaultSpec;
using io::MemoryBlockSource;

std::vector<const std::uint8_t*> snapshot_ptrs(
    const std::vector<std::uint8_t>& snap, std::size_t blocks,
    std::size_t bytes) {
  std::vector<const std::uint8_t*> ptrs(blocks);
  for (std::size_t i = 0; i < blocks; ++i) ptrs[i] = snap.data() + i * bytes;
  return ptrs;
}

std::vector<std::uint32_t> digests_of(const std::vector<std::uint8_t>& snap,
                                      std::size_t blocks, std::size_t bytes) {
  std::vector<std::uint32_t> crc(blocks);
  for (std::size_t i = 0; i < blocks; ++i) {
    crc[i] = crc32(snap.data() + i * bytes, bytes);
  }
  return crc;
}

// ---- backoff math (pure; satellite: exponential backoff) ---------------

TEST(Backoff, GrowsExponentially) {
  ResilienceOptions options;
  options.initial_backoff = std::chrono::nanoseconds{1000};
  options.backoff_multiplier = 2.0;
  options.max_backoff = std::chrono::nanoseconds{1000000};
  EXPECT_EQ(backoff_delay(options, 0).count(), 1000);
  EXPECT_EQ(backoff_delay(options, 1).count(), 2000);
  EXPECT_EQ(backoff_delay(options, 2).count(), 4000);
  EXPECT_EQ(backoff_delay(options, 3).count(), 8000);
}

TEST(Backoff, SaturatesAtMax) {
  ResilienceOptions options;
  options.initial_backoff = std::chrono::nanoseconds{1000};
  options.backoff_multiplier = 2.0;
  options.max_backoff = std::chrono::nanoseconds{5000};
  EXPECT_EQ(backoff_delay(options, 2).count(), 4000);
  EXPECT_EQ(backoff_delay(options, 3).count(), 5000);
  EXPECT_EQ(backoff_delay(options, 60).count(), 5000);  // no overflow
}

TEST(Backoff, HonorsMultiplier) {
  ResilienceOptions options;
  options.initial_backoff = std::chrono::nanoseconds{100};
  options.backoff_multiplier = 3.0;
  options.max_backoff = std::chrono::nanoseconds{100000};
  EXPECT_EQ(backoff_delay(options, 1).count(), 300);
  EXPECT_EQ(backoff_delay(options, 2).count(), 900);
}

TEST(Backoff, ClampsToRemainingDeadline) {
  // Satellite: the deadline-aware overload never schedules a sleep past
  // the remaining budget, and a spent budget sleeps zero.
  ResilienceOptions options;
  options.initial_backoff = std::chrono::nanoseconds{1000};
  options.backoff_multiplier = 2.0;
  options.max_backoff = std::chrono::nanoseconds{1000000};
  // Plenty of budget: identical to the pure schedule.
  EXPECT_EQ(
      backoff_delay(options, 3, std::chrono::nanoseconds{1000000}).count(),
      8000);
  // Budget smaller than the schedule: clamped exactly to it.
  EXPECT_EQ(backoff_delay(options, 3, std::chrono::nanoseconds{500}).count(),
            500);
  // Spent or overdrawn budget: no sleep at all.
  EXPECT_EQ(backoff_delay(options, 0, std::chrono::nanoseconds{0}).count(),
            0);
  EXPECT_EQ(backoff_delay(options, 0, std::chrono::nanoseconds{-50}).count(),
            0);
}

TEST(Backoff, JitterDrawsStayInsideTheConfiguredBand) {
  // Satellite: each jittered backoff is uniform in
  // [(1 - jitter) * base, base] — never above the exponential schedule
  // (the deadline math still holds) and never below the band's floor
  // (the retry still backs off).
  ResilienceOptions options;
  options.initial_backoff = std::chrono::nanoseconds{10000};
  options.backoff_multiplier = 2.0;
  options.max_backoff = std::chrono::nanoseconds{10000000};
  options.backoff_jitter = 0.5;
  Rng rng(42);
  for (std::size_t retry = 0; retry < 6; ++retry) {
    const auto base = backoff_delay(options, retry);
    for (int draw = 0; draw < 64; ++draw) {
      const auto jittered = backoff_delay(options, retry, rng);
      EXPECT_LE(jittered.count(), base.count());
      EXPECT_GE(jittered.count(),
                static_cast<std::int64_t>(0.5 * base.count()));
    }
  }
}

TEST(Backoff, JitterActuallySpreadsTheSchedule) {
  // The point of jitter is decorrelation: concurrent decodes with
  // distinct streams must not sleep in lockstep.
  ResilienceOptions options;
  options.initial_backoff = std::chrono::microseconds{100};
  options.backoff_jitter = 0.5;
  Rng a(1);
  Rng b(2);
  std::size_t distinct = 0;
  for (std::size_t retry = 0; retry < 8; ++retry) {
    if (backoff_delay(options, retry, a) != backoff_delay(options, retry, b)) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 0u);
}

TEST(Backoff, JitterIsReplayableFromAPinnedSeed) {
  ResilienceOptions options;
  options.initial_backoff = std::chrono::nanoseconds{5000};
  options.backoff_jitter = 0.3;
  Rng a(7);
  Rng b(7);
  for (std::size_t retry = 0; retry < 8; ++retry) {
    EXPECT_EQ(backoff_delay(options, retry, a).count(),
              backoff_delay(options, retry, b).count());
  }
}

TEST(Backoff, ZeroJitterConsumesNoDrawAndMatchesTheBaseForm) {
  // jitter == 0 must be bit-identical to the deterministic schedule and
  // must not advance the rng — existing pinned campaigns cannot drift.
  ResilienceOptions options;
  options.initial_backoff = std::chrono::nanoseconds{1000};
  Rng rng(9);
  Rng untouched(9);
  for (std::size_t retry = 0; retry < 5; ++retry) {
    EXPECT_EQ(backoff_delay(options, retry, rng).count(),
              backoff_delay(options, retry).count());
  }
  EXPECT_EQ(rng.next(), untouched.next());
}

TEST(Backoff, JitterAboveOneIsClampedToTheFullBand) {
  ResilienceOptions options;
  options.initial_backoff = std::chrono::nanoseconds{8000};
  options.backoff_jitter = 7.5;  // treated as 1.0: band is [0, base]
  Rng rng(3);
  for (std::size_t retry = 0; retry < 6; ++retry) {
    const auto jittered = backoff_delay(options, retry, rng);
    EXPECT_GE(jittered.count(), 0);
    EXPECT_LE(jittered.count(), backoff_delay(options, retry).count());
  }
}

TEST(Backoff, JitteredRetryLoopKeepsTheDeadlineClamp) {
  // Jitter composes with the deadline: jitter first, clamp second — a
  // jittered ladder still cannot oversleep a short deadline.
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 78);
  const FailureScenario sc({1});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec dead;
  dead.fail_always = true;
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    if (b != 1) source.set_fault(b, dead);
  }
  ResilienceOptions options;
  options.max_read_retries = 4;
  options.initial_backoff = std::chrono::seconds{10};
  options.backoff_jitter = 0.5;
  options.jitter_seed = 1234;
  options.deadline = std::chrono::milliseconds{20};
  const Timer timer;
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512, options);
  EXPECT_FALSE(out.complete);
  EXPECT_LT(timer.seconds(), 2.0);
}

TEST(Backoff, RetryLoopNeverOversleepsTheDeadline) {
  // Regression: a huge initial backoff plus a short deadline must not
  // stall the decode for the full backoff — the clamped sleep keeps the
  // whole resilient call in the deadline's neighborhood.
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 77);
  const FailureScenario sc({1});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec dead;
  dead.fail_always = true;
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    if (b != 1) source.set_fault(b, dead);  // every survivor unreadable
  }
  ResilienceOptions options;
  options.max_read_retries = 4;
  options.initial_backoff = std::chrono::seconds{10};  // would stall 10s+
  options.deadline = std::chrono::milliseconds{20};
  const Timer timer;
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512, options);
  EXPECT_FALSE(out.complete);
  // The ladder may report the failure as retry exhaustion or as a
  // deadline hit depending on which trips first; the regression being
  // pinned is purely the wall clock: 20ms budget, generous scheduling
  // slack — nowhere near the 10s configured sleep.
  EXPECT_LT(timer.seconds(), 2.0);
}

// ---- pipeline behavior -------------------------------------------------

TEST(Resilient, EmptyScenarioCompletesWithoutReads) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 1);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource source(ptrs.data(), code.total_blocks(), 512);
  const auto out = codec.decode_resilient(FailureScenario{}, source,
                                          stripe.block_ptrs(), 512);
  EXPECT_TRUE(out.complete);
  EXPECT_TRUE(out.recovered.empty());
}

TEST(Resilient, CleanSourceDecodesCompletely) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 2);
  const FailureScenario sc({0, 7});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource source(ptrs.data(), code.total_blocks(), 512);
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512);
  EXPECT_TRUE(out.complete);
  EXPECT_FALSE(out.partial);
  EXPECT_EQ(out.escalations, 0u);
  EXPECT_EQ(out.retries, 0u);
  EXPECT_EQ(out.recovered, (std::vector<std::size_t>{0, 7}));
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(out.outcome_of(0), RecoveryOutcome::kRecovered);
  EXPECT_EQ(out.outcome_of(3), RecoveryOutcome::kIntact);
}

TEST(Resilient, FailThenRecoverSucceedsWithoutEscalation) {
  // Satellite: a transient fault within the retry budget never escalates.
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 3);
  const FailureScenario sc({1});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec transient;
  transient.fail_reads = 2;
  source.set_fault(4, transient);
  ResilienceOptions options;
  options.max_read_retries = 3;
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512, options);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.escalations, 0u);
  EXPECT_GE(out.retries, 2u);
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_GE(codec.metrics().resilience_retries.value(), 2u);
}

TEST(Resilient, EscalatesUnreadableSurvivorAndStillRecovers) {
  // {0,1} faulty, survivor 2 dead: within RS(6,3)'s capability after
  // escalating to {0,1,2}. The decode must end byte-identical.
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 4);
  const FailureScenario sc({0, 1});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec dead;
  dead.fail_always = true;
  source.set_fault(2, dead);
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.escalations, 1u);
  EXPECT_TRUE(out.final_scenario.contains(2));
  EXPECT_EQ(out.recovered, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(out.outcome_of(2), RecoveryOutcome::kRecovered);
  EXPECT_EQ(codec.metrics().resilience_escalations.value(), 1u);
}

TEST(Resilient, EscalationBeyondCapabilityDegrades) {
  // RS(4,2) tolerates 2 losses; {0,1} plus a dead survivor is beyond it,
  // and RS has no independent sub-matrices to fall back on.
  const RSCode code(4, 2, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 5);
  const FailureScenario sc({0, 1});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec dead;
  dead.fail_always = true;
  source.set_fault(2, dead);
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512);
  EXPECT_FALSE(out.complete);
  EXPECT_FALSE(out.partial);  // nothing recovered at all
  EXPECT_TRUE(out.recovered.empty());
  EXPECT_EQ(out.source_failed, (std::vector<std::size_t>{2}));
  EXPECT_EQ(out.unrecoverable, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(out.outcome_of(2), RecoveryOutcome::kSourceFailed);
  EXPECT_GE(codec.metrics().resilience_partial_decodes.value(), 1u);
}

TEST(Resilient, PartialRecoverySolvesIndependentGroups) {
  // LRC(8,4,2): groups of 2 with locals 8..11, globals 12..13. Losing
  // group 0 entirely plus both globals is undecodable, but group 1's
  // local row still recovers block 2 on its own.
  const LRCCode code(8, 4, 2, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 6);
  const FailureScenario sc({0, 1, 2, 12, 13});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource source(ptrs.data(), code.total_blocks(), 512);
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512);
  EXPECT_FALSE(out.complete);
  EXPECT_TRUE(out.partial);
  EXPECT_EQ(out.recovered, (std::vector<std::size_t>{2}));
  EXPECT_EQ(out.unrecoverable, (std::vector<std::size_t>{0, 1, 12, 13}));
  EXPECT_TRUE(stripe.blocks_equal(snap, out.recovered));
  EXPECT_EQ(out.outcome_of(2), RecoveryOutcome::kRecovered);
  EXPECT_EQ(out.outcome_of(0), RecoveryOutcome::kUnrecoverable);
  EXPECT_GE(codec.metrics().resilience_partial_decodes.value(), 1u);
}

TEST(Resilient, StragglersRespectDeadline) {
  // Satellite: every survivor read sleeps 20ms; without the 30ms deadline
  // the decode would take >= 160ms. The deadline must cut it off within
  // one in-flight read plus slack.
  const RSCode code(8, 4, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 7);
  const FailureScenario sc({0});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec slow;
  slow.delay = std::chrono::milliseconds{20};
  for (std::size_t b = 1; b < code.total_blocks(); ++b) {
    source.set_fault(b, slow);
  }
  ResilienceOptions options;
  options.deadline = std::chrono::milliseconds{30};
  const Timer wall;
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512, options);
  const double elapsed = wall.seconds();
  EXPECT_TRUE(out.deadline_exceeded);
  EXPECT_FALSE(out.complete);
  // 30ms budget + at most one 20ms in-flight read + generous CI slack.
  EXPECT_LT(elapsed, 0.5);
  EXPECT_GE(codec.metrics().resilience_deadline_exceeded.value(), 1u);
}

TEST(Resilient, MaxEscalationsCapDegradesInstead) {
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 8);
  const FailureScenario sc({0});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec dead;
  dead.fail_always = true;
  source.set_fault(1, dead);
  ResilienceOptions options;
  options.max_escalations = 0;
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512, options);
  EXPECT_FALSE(out.complete);
  EXPECT_EQ(out.escalations, 0u);
  EXPECT_EQ(out.outcome_of(1), RecoveryOutcome::kSourceFailed);
  EXPECT_EQ(out.outcome_of(0), RecoveryOutcome::kUnrecoverable);
}

TEST(Resilient, CorruptSurvivorDetectedByDigestsAndEscalated) {
  // A silently corrupt survivor fails its CRC on every read, escalates
  // into the faulty set, and the decode still ends byte-identical.
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 9);
  const auto crc = digests_of(snap, code.total_blocks(), 512);
  const FailureScenario sc({0});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec rot;
  rot.corrupt = true;
  rot.corrupt_offset = 17;
  rot.corrupt_bytes = 3;
  source.set_fault(2, rot);
  const auto out = codec.decode_resilient(sc, source, stripe.block_ptrs(),
                                          512, {}, crc);
  EXPECT_TRUE(out.complete);
  EXPECT_GE(out.corruption_detected, 1u);
  EXPECT_EQ(out.escalations, 1u);
  EXPECT_TRUE(out.final_scenario.contains(2));
  EXPECT_EQ(out.recovered, (std::vector<std::size_t>{0, 2}));
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_GE(codec.metrics().resilience_corruption_detected.value(), 1u);
}

TEST(Resilient, CorruptSurvivorUndetectedWithoutDigests) {
  // Rung 4's value, stated as a test: without digests the same fault
  // yields a "complete" decode with wrong bytes.
  const RSCode code(6, 3, 8);
  Codec codec(code);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 9);
  const FailureScenario sc({0});
  stripe.erase(sc);
  const auto ptrs = snapshot_ptrs(snap, code.total_blocks(), 512);
  MemoryBlockSource inner(ptrs.data(), code.total_blocks(), 512);
  FaultInjectingSource source(inner);
  FaultSpec rot;
  rot.corrupt = true;
  rot.corrupt_offset = 17;
  rot.corrupt_bytes = 3;
  source.set_fault(2, rot);
  const auto out =
      codec.decode_resilient(sc, source, stripe.block_ptrs(), 512);
  EXPECT_TRUE(out.complete);
  EXPECT_EQ(out.corruption_detected, 0u);
  EXPECT_FALSE(stripe.blocks_equal(snap, out.recovered));
}

TEST(Resilient, MetricsJsonCarriesResilienceGroup) {
  const RSCode code(6, 3, 8);
  const Codec codec(code);
  const std::string json = codec.metrics_json();
  EXPECT_NE(json.find("\"resilience\":{"), std::string::npos);
  EXPECT_NE(json.find("\"escalations\":"), std::string::npos);
  EXPECT_NE(json.find("\"partial_decodes\":"), std::string::npos);
  EXPECT_NE(json.find("\"store_failures\":"), std::string::npos);
}

}  // namespace
}  // namespace ppm
