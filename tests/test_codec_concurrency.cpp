// Multi-threaded codec soak: N threads drive mixed failure scenarios
// through one Codec — decode, plan_for, and lock-free stats reads all at
// once — while the sharded LRU plan cache churns (64+ scenarios through
// capacity 8). Every decoded stripe is verified byte-exact. The CI TSan
// job (PPM_SANITIZE=thread) runs this file to prove the absence of data
// races, not just the absence of wrong answers.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "codec/codec.h"
#include "test_util.h"

namespace ppm {
namespace {

std::vector<FailureScenario> distinct_scenarios(const ErasureCode& code,
                                                std::size_t want) {
  ScenarioGenerator gen(7001);
  std::set<std::vector<std::size_t>> seen;
  std::vector<FailureScenario> out;
  for (std::size_t guard = 0; out.size() < want && guard < want * 200;
       ++guard) {
    const auto g = gen.sd_worst_case(code, 2, 2, 1);
    const std::vector<std::size_t> key(g.scenario.faulty().begin(),
                                       g.scenario.faulty().end());
    if (seen.insert(key).second) out.push_back(g.scenario);
  }
  return out;
}

TEST(CodecSoak, ConcurrentMixedScenarioTraffic) {
  const SDCode code(8, 4, 2, 2, 8);
  constexpr std::size_t kScenarios = 64;
  constexpr std::size_t kBlock = 128;
  constexpr int kThreads = 8;
  constexpr int kRounds = 2;

  const auto scenarios = distinct_scenarios(code, kScenarios);
  ASSERT_EQ(scenarios.size(), kScenarios);

  Codec::Options opts;
  opts.cache_capacity = 8;  // 64 scenarios churn through 8 cached plans
  Codec codec(code, opts);
  ASSERT_GT(codec.cache_shards(), 1u);

  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> decodes{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Per-thread stripe; the codec and its cache are the shared state
      // under test.
      Stripe stripe(code, kBlock);
      const auto snap = test::fill_and_encode(code, stripe, 9000 + t);
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t i = 0; i < scenarios.size(); ++i) {
          // Thread-dependent order so threads collide on different keys.
          const FailureScenario& sc =
              scenarios[(i * 7 + static_cast<std::size_t>(t) * 17) %
                        scenarios.size()];
          stripe.erase(sc);
          DecodeStats stats;
          if (!codec.decode(sc, stripe.block_ptrs(), kBlock, &stats) ||
              stats.mult_xors == 0 || !stripe.equals(snap)) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          decodes.fetch_add(1, std::memory_order_relaxed);
          if (i % 8 == 0) {
            // Stats reads concurrent with decode traffic: lock-free,
            // must be race-free under TSan.
            (void)codec.cache_hits();
            (void)codec.cache_misses();
            (void)codec.cache_evictions();
            (void)codec.cache_size();
          }
          if (i % 16 == 0 && codec.plan_for(sc) == nullptr) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          if (i % 32 == 0 && codec.metrics_json().empty()) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  threads.clear();  // join

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(decodes.load(),
            static_cast<std::size_t>(kThreads) * kRounds * kScenarios);
  EXPECT_LE(codec.cache_size(), opts.cache_capacity);
  EXPECT_EQ(codec.metrics().decodes.value(), decodes.load());
  EXPECT_GT(codec.metrics().mult_xors.value(), 0u);
  EXPECT_EQ(codec.metrics().decode_seconds.count(), decodes.load());
  // Eviction accounting stays consistent after churn: every miss built a
  // plan that is either resident, evicted, or was beaten by a concurrent
  // insert of the same key (those count as misses but not evictions).
  EXPECT_GE(codec.cache_misses(), codec.cache_evictions());
  EXPECT_GT(codec.cache_hits(), 0u);
  EXPECT_GT(codec.cache_evictions(), 0u);
}

TEST(CodecSoak, ConcurrentBatchDecodesShareOnePool) {
  const SDCode code(8, 4, 2, 2, 8);
  constexpr std::size_t kBlock = 128;
  constexpr std::size_t kStripes = 8;
  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  ScenarioGenerator gen(7100);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);

  Codec::Options opts;
  opts.threads = 4;
  Codec codec(code, opts);

  std::atomic<std::size_t> failures{0};
  std::vector<std::jthread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<std::unique_ptr<Stripe>> stripes;
      std::vector<std::vector<std::uint8_t>> snaps;
      std::vector<std::uint8_t* const*> ptrs;
      for (std::size_t i = 0; i < kStripes; ++i) {
        stripes.push_back(std::make_unique<Stripe>(code, kBlock));
        snaps.push_back(test::fill_and_encode(
            code, *stripes.back(), 9500 + t * 100 + static_cast<int>(i)));
        ptrs.push_back(stripes.back()->block_ptrs());
      }
      for (int round = 0; round < kRounds; ++round) {
        for (const auto& s : stripes) s->erase(g.scenario);
        const auto result = codec.decode_batch(g.scenario, ptrs, kBlock);
        if (!result.has_value() || result->stripes != kStripes) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        for (std::size_t i = 0; i < kStripes; ++i) {
          if (!stripes[i]->equals(snaps[i])) {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  threads.clear();  // join

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(codec.metrics().batches.value(),
            static_cast<std::size_t>(kThreads) * kRounds);
  EXPECT_EQ(codec.metrics().stripes_decoded.value(),
            static_cast<std::size_t>(kThreads) * kRounds * kStripes);
  EXPECT_EQ(codec.metrics().batch_seconds.count(),
            static_cast<std::size_t>(kThreads) * kRounds);
}

}  // namespace
}  // namespace ppm
