// BlockSource adapters: the in-memory source and the fault injector.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "io/block_source.h"
#include "io/fault_injection.h"

namespace ppm::io {
namespace {

/// A 4-block, 64-byte in-memory fixture with distinct per-block bytes.
class SourceFixture {
 public:
  static constexpr std::size_t kBlocks = 4;
  static constexpr std::size_t kBytes = 64;

  SourceFixture() {
    for (std::size_t b = 0; b < kBlocks; ++b) {
      data_[b].resize(kBytes);
      for (std::size_t i = 0; i < kBytes; ++i) {
        data_[b][i] = static_cast<std::uint8_t>(b * 100 + i);
      }
      ptrs_[b] = data_[b].data();
    }
  }

  MemoryBlockSource make() const {
    return MemoryBlockSource(ptrs_.data(), kBlocks, kBytes);
  }

  const std::uint8_t* block(std::size_t b) const { return data_[b].data(); }

 private:
  std::array<std::vector<std::uint8_t>, kBlocks> data_;
  std::array<const std::uint8_t*, kBlocks> ptrs_;
};

TEST(MemorySource, ReadsCopyBackingBytes) {
  const SourceFixture fx;
  MemoryBlockSource src = fx.make();
  EXPECT_EQ(src.block_count(), SourceFixture::kBlocks);
  EXPECT_EQ(src.block_bytes(), SourceFixture::kBytes);
  std::vector<std::uint8_t> dst(SourceFixture::kBytes, 0);
  for (std::size_t b = 0; b < SourceFixture::kBlocks; ++b) {
    ASSERT_EQ(src.read(b, dst.data(), dst.size()), ReadStatus::kOk);
    EXPECT_EQ(std::memcmp(dst.data(), fx.block(b), dst.size()), 0);
  }
}

TEST(MemorySource, PrefixReadCopiesPrefixOnly) {
  const SourceFixture fx;
  MemoryBlockSource src = fx.make();
  std::vector<std::uint8_t> dst(SourceFixture::kBytes, 0xAA);
  ASSERT_EQ(src.read(1, dst.data(), 16), ReadStatus::kOk);
  EXPECT_EQ(std::memcmp(dst.data(), fx.block(1), 16), 0);
  for (std::size_t i = 16; i < dst.size(); ++i) EXPECT_EQ(dst[i], 0xAA);
}

TEST(MemorySource, OutOfRangeReadsFail) {
  const SourceFixture fx;
  MemoryBlockSource src = fx.make();
  std::vector<std::uint8_t> dst(SourceFixture::kBytes);
  EXPECT_EQ(src.read(SourceFixture::kBlocks, dst.data(), dst.size()),
            ReadStatus::kFailed);
  EXPECT_EQ(src.read(0, dst.data(), SourceFixture::kBytes + 1),
            ReadStatus::kFailed);
  EXPECT_EQ(src.read(0, nullptr, SourceFixture::kBytes),
            ReadStatus::kFailed);
}

TEST(FaultInjection, HealthyByDefault) {
  const SourceFixture fx;
  MemoryBlockSource inner = fx.make();
  FaultInjectingSource src(inner);
  std::vector<std::uint8_t> dst(SourceFixture::kBytes);
  for (std::size_t b = 0; b < SourceFixture::kBlocks; ++b) {
    ASSERT_EQ(src.read(b, dst.data(), dst.size()), ReadStatus::kOk);
    EXPECT_EQ(std::memcmp(dst.data(), fx.block(b), dst.size()), 0);
  }
  EXPECT_EQ(src.reads_attempted(), SourceFixture::kBlocks);
  EXPECT_EQ(src.failures_injected(), 0u);
  EXPECT_EQ(src.corruptions_injected(), 0u);
}

TEST(FaultInjection, PermanentFailureFailsEveryAttempt) {
  const SourceFixture fx;
  MemoryBlockSource inner = fx.make();
  FaultInjectingSource src(inner);
  FaultSpec spec;
  spec.fail_always = true;
  src.set_fault(2, spec);
  std::vector<std::uint8_t> dst(SourceFixture::kBytes);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(src.read(2, dst.data(), dst.size()), ReadStatus::kFailed);
  }
  EXPECT_EQ(src.failures_injected(), 5u);
  EXPECT_TRUE(spec.permanently_unreadable(100));
  // Other blocks are untouched.
  EXPECT_EQ(src.read(0, dst.data(), dst.size()), ReadStatus::kOk);
}

TEST(FaultInjection, TransientFailureRecoversAfterN) {
  const SourceFixture fx;
  MemoryBlockSource inner = fx.make();
  FaultInjectingSource src(inner);
  FaultSpec spec;
  spec.fail_reads = 2;
  src.set_fault(1, spec);
  std::vector<std::uint8_t> dst(SourceFixture::kBytes);
  EXPECT_EQ(src.read(1, dst.data(), dst.size()), ReadStatus::kFailed);
  EXPECT_EQ(src.read(1, dst.data(), dst.size()), ReadStatus::kFailed);
  ASSERT_EQ(src.read(1, dst.data(), dst.size()), ReadStatus::kOk);
  EXPECT_EQ(std::memcmp(dst.data(), fx.block(1), dst.size()), 0);
  EXPECT_FALSE(spec.permanently_unreadable(2));
  EXPECT_TRUE(spec.permanently_unreadable(1));
}

TEST(FaultInjection, SetFaultResetsAttemptCounter) {
  const SourceFixture fx;
  MemoryBlockSource inner = fx.make();
  FaultInjectingSource src(inner);
  FaultSpec spec;
  spec.fail_reads = 1;
  src.set_fault(0, spec);
  std::vector<std::uint8_t> dst(SourceFixture::kBytes);
  EXPECT_EQ(src.read(0, dst.data(), dst.size()), ReadStatus::kFailed);
  EXPECT_EQ(src.read(0, dst.data(), dst.size()), ReadStatus::kOk);
  src.set_fault(0, spec);  // re-arm: attempt count restarts
  EXPECT_EQ(src.read(0, dst.data(), dst.size()), ReadStatus::kFailed);
}

TEST(FaultInjection, CorruptionFlipsExactRange) {
  const SourceFixture fx;
  MemoryBlockSource inner = fx.make();
  FaultInjectingSource src(inner);
  FaultSpec spec;
  spec.corrupt = true;
  spec.corrupt_offset = 8;
  spec.corrupt_bytes = 4;
  spec.corrupt_mask = 0x5A;
  src.set_fault(3, spec);
  std::vector<std::uint8_t> dst(SourceFixture::kBytes);
  ASSERT_EQ(src.read(3, dst.data(), dst.size()), ReadStatus::kOk);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    const std::uint8_t want = i >= 8 && i < 12
                                  ? static_cast<std::uint8_t>(
                                        fx.block(3)[i] ^ 0x5A)
                                  : fx.block(3)[i];
    EXPECT_EQ(dst[i], want) << "byte " << i;
  }
  EXPECT_EQ(src.corruptions_injected(), 1u);
  EXPECT_TRUE(spec.permanently_unreadable(0));
}

TEST(FaultInjection, ZeroMaskStillCorrupts) {
  const SourceFixture fx;
  MemoryBlockSource inner = fx.make();
  FaultInjectingSource src(inner);
  FaultSpec spec;
  spec.corrupt = true;
  spec.corrupt_mask = 0;  // promoted to 0xFF: a corrupting spec corrupts
  src.set_fault(0, spec);
  std::vector<std::uint8_t> dst(SourceFixture::kBytes);
  ASSERT_EQ(src.read(0, dst.data(), dst.size()), ReadStatus::kOk);
  EXPECT_NE(std::memcmp(dst.data(), fx.block(0), dst.size()), 0);
}

TEST(FaultInjection, CampaignIsDeterministicFromSeed) {
  const SourceFixture fx;
  MemoryBlockSource inner_a = fx.make();
  MemoryBlockSource inner_b = fx.make();
  FaultInjectingSource a(inner_a);
  FaultInjectingSource b(inner_b);
  FaultInjectingSource::CampaignOptions options;
  options.fail_permanent = 0.25;
  options.fail_transient = 0.25;
  options.corrupt = 0.25;
  Rng rng_a(42);
  Rng rng_b(42);
  a.roll_campaign(options, rng_a);
  b.roll_campaign(options, rng_b);
  for (std::size_t blk = 0; blk < SourceFixture::kBlocks; ++blk) {
    const FaultSpec& fa = a.fault(blk);
    const FaultSpec& fb = b.fault(blk);
    EXPECT_EQ(fa.fail_always, fb.fail_always);
    EXPECT_EQ(fa.fail_reads, fb.fail_reads);
    EXPECT_EQ(fa.corrupt, fb.corrupt);
    EXPECT_EQ(fa.corrupt_offset, fb.corrupt_offset);
    EXPECT_EQ(fa.corrupt_bytes, fb.corrupt_bytes);
  }
}

TEST(FaultInjection, ExemptBlocksStayHealthyWithoutShiftingOthers) {
  const SourceFixture fx;
  MemoryBlockSource inner_a = fx.make();
  MemoryBlockSource inner_b = fx.make();
  FaultInjectingSource all(inner_a);
  FaultInjectingSource some(inner_b);
  FaultInjectingSource::CampaignOptions options;
  options.fail_permanent = 0.5;
  options.fail_transient = 0.5;
  Rng rng_a(7);
  Rng rng_b(7);
  all.roll_campaign(options, rng_a);
  some.roll_campaign(options, rng_b, {1});
  // Block 1 is exempt: healthy spec regardless of the roll.
  EXPECT_FALSE(some.fault(1).fail_always);
  EXPECT_EQ(some.fault(1).fail_reads, 0u);
  // Every other block drew the same spec as the exemption-free roll.
  for (const std::size_t blk : {std::size_t{0}, std::size_t{2},
                                std::size_t{3}}) {
    EXPECT_EQ(some.fault(blk).fail_always, all.fault(blk).fail_always);
    EXPECT_EQ(some.fault(blk).fail_reads, all.fault(blk).fail_reads);
  }
}

}  // namespace
}  // namespace ppm::io
