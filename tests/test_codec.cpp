// Codec facade: plan caching and batch decode.
#include <gtest/gtest.h>

#include <cstring>

#include "codec/codec.h"
#include "test_util.h"

namespace ppm {
namespace {

TEST(Codec, DecodeMatchesPpmDecoder) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 540);
  ScenarioGenerator gen(541);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  Codec codec(code);
  DecodeStats stats;
  ASSERT_TRUE(codec.decode(g.scenario, stripe.block_ptrs(), 512, &stats));
  EXPECT_TRUE(stripe.equals(snap));
  // Cached plan realizes PPM's cost.
  const auto costs = analyze_costs(code, g.scenario);
  ASSERT_TRUE(costs.has_value());
  EXPECT_EQ(stats.mult_xors, costs->ppm_best());
}

TEST(Codec, PlanIsCachedAcrossDecodes) {
  const SDCode code(8, 8, 2, 2, 8);
  Codec codec(code);
  ScenarioGenerator gen(542);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  Stripe stripe(code, 256);
  const auto snap = test::fill_and_encode(code, stripe, 543);
  for (int i = 0; i < 5; ++i) {
    stripe.erase(g.scenario);
    ASSERT_TRUE(codec.decode(g.scenario, stripe.block_ptrs(), 256));
  }
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(codec.cache_misses(), 1u);
  EXPECT_EQ(codec.cache_hits(), 4u);
  EXPECT_EQ(codec.cache_size(), 1u);
}

TEST(Codec, CacheEvictsLruAtCapacity) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Codec::Options opts;
  opts.cache_capacity = 2;
  opts.cache_shards = 1;  // single shard: deterministic global LRU order
  Codec codec(code, opts);
  for (const std::size_t b : {0u, 1u}) {
    EXPECT_NE(codec.plan_for(FailureScenario({b})), nullptr);
  }
  // Touch {0}: {1} becomes the LRU victim of the next insert.
  EXPECT_NE(codec.plan_for(FailureScenario({0})), nullptr);
  EXPECT_EQ(codec.cache_hits(), 1u);
  EXPECT_NE(codec.plan_for(FailureScenario({2})), nullptr);
  EXPECT_EQ(codec.cache_size(), 2u);
  EXPECT_EQ(codec.cache_evictions(), 1u);
  // {0} survived (recently used); {1} was evicted, re-planning it misses.
  const std::size_t misses = codec.cache_misses();
  EXPECT_NE(codec.plan_for(FailureScenario({0})), nullptr);
  EXPECT_EQ(codec.cache_misses(), misses);
  EXPECT_NE(codec.plan_for(FailureScenario({1})), nullptr);
  EXPECT_EQ(codec.cache_misses(), misses + 1);
}

TEST(Codec, CacheChurnKeepsBookkeepingConsistent) {
  // Evicted-then-reinserted scenarios must not corrupt the eviction order
  // (the old FIFO vector accumulated duplicate keys under this pattern).
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Codec::Options opts;
  opts.cache_capacity = 2;
  opts.cache_shards = 1;
  Codec codec(code, opts);
  for (int round = 0; round < 6; ++round) {
    for (const std::size_t b : {0u, 1u, 2u, 3u}) {
      ASSERT_NE(codec.plan_for(FailureScenario({b})), nullptr);
      ASSERT_LE(codec.cache_size(), 2u);
    }
  }
  EXPECT_EQ(codec.cache_hits() + codec.cache_misses(), 24u);
  // Every miss inserted a plan; all but the residents were evicted.
  EXPECT_EQ(codec.cache_evictions(),
            codec.cache_misses() - codec.cache_size());
  // A plan held by a caller survives eviction (shared_ptr pins it).
  const auto pinned = codec.plan_for(FailureScenario({0}));
  ASSERT_NE(pinned, nullptr);
  for (const std::size_t b : {1u, 2u, 3u}) {
    ASSERT_NE(codec.plan_for(FailureScenario({b})), nullptr);
  }
  EXPECT_GT(pinned->cost(), 0u);  // still valid after being evicted
}

TEST(Codec, ShardedCacheBoundsTotalResidency) {
  const SDCode code(8, 4, 2, 2, 8);
  Codec::Options opts;
  opts.cache_capacity = 8;
  Codec codec(code, opts);
  EXPECT_EQ(codec.cache_shards(), 8u);
  ScenarioGenerator gen(549);
  for (int i = 0; i < 40; ++i) {
    const auto g = gen.sd_worst_case(code, 2, 2, 1);
    ASSERT_NE(codec.plan_for(g.scenario), nullptr);
    ASSERT_LE(codec.cache_size(), 8u);
  }
}

TEST(Codec, MetricsJsonReflectsTraffic) {
  const SDCode code(8, 8, 2, 2, 8);
  Codec codec(code);
  Stripe stripe(code, 256);
  const auto snap = test::fill_and_encode(code, stripe, 550);
  ScenarioGenerator gen(551);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  for (int i = 0; i < 3; ++i) {
    stripe.erase(g.scenario);
    ASSERT_TRUE(codec.decode(g.scenario, stripe.block_ptrs(), 256));
  }
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(codec.metrics().decodes.value(), 3u);
  EXPECT_EQ(codec.metrics().decode_seconds.count(), 3u);
  EXPECT_EQ(codec.metrics().plan_seconds.count(), 1u);  // one miss, one build
  const auto costs = analyze_costs(code, g.scenario);
  EXPECT_EQ(codec.metrics().mult_xors.value(), 3 * costs->ppm_best());
  const std::string json = codec.metrics_json();
  EXPECT_NE(json.find("\"hits\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"misses\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"evictions\":0"), std::string::npos) << json;
}

TEST(Codec, UndecodableScenarioReturnsFalse) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Codec codec(code);
  Stripe stripe(code, 256);
  test::fill_and_encode(code, stripe, 544);
  EXPECT_FALSE(codec.decode(FailureScenario({0, 1, 2}), stripe.block_ptrs(),
                            256));
  EXPECT_EQ(codec.plan_for(FailureScenario({0, 1, 2})), nullptr);
}

TEST(Codec, EncodeMatchesTraditional) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe a(code, 256);
  Stripe b(code, 256);
  Rng rng(545);
  a.fill_data(rng);
  std::memcpy(b.block(0), a.block(0), a.stripe_bytes());
  const TraditionalDecoder trad(code);
  ASSERT_TRUE(trad.encode(a.block_ptrs(), 256));
  Codec codec(code);
  ASSERT_TRUE(codec.encode(b.block_ptrs(), 256));
  EXPECT_TRUE(b.equals(a.snapshot()));
}

TEST(Codec, BatchDecodeRestoresEveryStripe) {
  const SDCode code(8, 8, 2, 2, 8);
  ScenarioGenerator gen(546);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);

  constexpr std::size_t kStripes = 12;
  std::vector<std::unique_ptr<Stripe>> stripes;
  std::vector<std::vector<std::uint8_t>> snaps;
  std::vector<std::uint8_t* const*> ptrs;
  for (std::size_t i = 0; i < kStripes; ++i) {
    stripes.push_back(std::make_unique<Stripe>(code, 256));
    snaps.push_back(test::fill_and_encode(code, *stripes.back(), 547 + i));
    stripes.back()->erase(g.scenario);
    ptrs.push_back(stripes.back()->block_ptrs());
  }

  Codec::Options opts;
  opts.threads = 3;
  Codec codec(code, opts);
  const auto result = codec.decode_batch(g.scenario, ptrs, 256);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->stripes, kStripes);
  for (std::size_t i = 0; i < kStripes; ++i) {
    EXPECT_TRUE(stripes[i]->equals(snaps[i])) << "stripe " << i;
  }
  // Stats sum over stripes: kStripes * per-stripe cost.
  const auto costs = analyze_costs(code, g.scenario);
  EXPECT_EQ(result->stats.mult_xors, kStripes * costs->ppm_best());
}

TEST(Codec, BatchDecodeEmptyBatch) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Codec codec(code);
  const auto result =
      codec.decode_batch(FailureScenario({0}), {}, 256);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->stripes, 0u);
  EXPECT_EQ(result->stats.mult_xors, 0u);
}

TEST(Codec, EmptyScenarioDecodeIsNoOp) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Codec codec(code);
  Stripe stripe(code, 256);
  const auto snap = test::fill_and_encode(code, stripe, 548);
  ASSERT_TRUE(codec.decode(FailureScenario{}, stripe.block_ptrs(), 256));
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(CachedPlan, CostAccountsGroupsAndRest) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Codec codec(code);
  const auto plan = codec.plan_for(FailureScenario({2, 6, 10, 13, 14}));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->p(), 3u);
  EXPECT_EQ(plan->cost(), 29u);  // C4 from the paper's example
}

}  // namespace
}  // namespace ppm
