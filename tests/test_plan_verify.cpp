// The plan verifier (verify_plan/) must accept every plan the library
// actually builds and reject hand-corrupted plans with the *matching*
// Violation kind — a verifier that flags the wrong invariant is as
// untrustworthy as no verifier.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "test_util.h"

namespace ppm {
namespace {

using planverify::Violation;
using planverify::ViolationKind;

bool has_kind(const std::vector<Violation>& violations, ViolationKind kind) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.kind == kind; });
}

std::vector<std::size_t> to_vec(std::span<const std::size_t> s) {
  return {s.begin(), s.end()};
}

// Mutable copy of a SubPlan's parts, rebuildable via from_parts so tests
// can corrupt exactly one field.
struct Parts {
  Sequence seq;
  std::vector<std::size_t> unknowns;
  std::vector<std::size_t> survivors;
  std::vector<std::size_t> rows;
  Matrix finv;
  Matrix s;
  std::size_t cost;
  std::size_t source_blocks;
};

Parts parts_of(const SubPlan& sub) {
  return Parts{sub.sequence(),       to_vec(sub.unknowns()),
               to_vec(sub.survivors()), to_vec(sub.check_rows()),
               sub.finv(),          sub.s(),
               sub.cost(),          sub.source_blocks()};
}

SubPlan rebuild(const gf::Field& f, const Parts& p) {
  return SubPlan::from_parts(f, p.seq, p.unknowns, p.survivors, p.rows,
                             p.finv, p.s, p.cost, p.source_blocks);
}

class PlanVerifyCorruption : public ::testing::Test {
 protected:
  PlanVerifyCorruption() : code_(6, 3, 8), scenario_({0, 1}) {
    Codec codec(code_);
    plan_ = codec.plan_for(scenario_);
    EXPECT_NE(plan_, nullptr);
    EXPECT_GE(plan_->groups().size() + plan_->rest().has_value(), 1u);
  }

  const SubPlan& valid_sub() const {
    return plan_->groups().empty() ? *plan_->rest() : plan_->groups()[0];
  }

  std::vector<Violation> verify_corrupted(const Parts& p) const {
    std::vector<Violation> out;
    planverify::verify_subplan(code_.parity_check(),
                               rebuild(code_.field(), p),
                               scenario_.faulty(), 0, out);
    return out;
  }

  RSCode code_;
  FailureScenario scenario_;
  std::shared_ptr<const CachedPlan> plan_;
};

TEST_F(PlanVerifyCorruption, ValidPlanIsClean) {
  const auto verdict = planverify::verify_plan(code_, scenario_, *plan_);
  EXPECT_TRUE(verdict.ok()) << planverify::to_json(verdict.violations);
}

TEST_F(PlanVerifyCorruption, NonInvertibleFIsSingularF) {
  Parts p = parts_of(valid_sub());
  ASSERT_GE(p.rows.size(), 2u);
  p.rows[1] = p.rows[0];  // same H row twice: F cannot be invertible
  const auto v = verify_corrupted(p);
  EXPECT_TRUE(has_kind(v, ViolationKind::kSingularF))
      << planverify::to_json(v);
}

TEST_F(PlanVerifyCorruption, OutOfBoundsSurvivorIsFlagged) {
  Parts p = parts_of(valid_sub());
  ASSERT_FALSE(p.survivors.empty());
  p.survivors[0] = code_.total_blocks() + 7;
  const auto v = verify_corrupted(p);
  EXPECT_TRUE(has_kind(v, ViolationKind::kSurvivorOutOfBounds))
      << planverify::to_json(v);
}

TEST_F(PlanVerifyCorruption, ClaimedCostMismatchIsFlagged) {
  Parts p = parts_of(valid_sub());
  p.cost += 1;  // cost model would silently drift from reality
  const auto v = verify_corrupted(p);
  EXPECT_TRUE(has_kind(v, ViolationKind::kCostMismatch))
      << planverify::to_json(v);
}

TEST_F(PlanVerifyCorruption, ClaimedSourceBlocksMismatchIsFlagged) {
  Parts p = parts_of(valid_sub());
  p.source_blocks += 1;
  const auto v = verify_corrupted(p);
  EXPECT_TRUE(has_kind(v, ViolationKind::kSourceBlocksMismatch))
      << planverify::to_json(v);
}

TEST_F(PlanVerifyCorruption, TamperedMatrixEntryIsFlagged) {
  Parts p = parts_of(valid_sub());
  ASSERT_GT(p.finv.rows(), 0u);
  p.finv(0, 0) ^= 1;  // single coefficient flip
  const auto v = verify_corrupted(p);
  EXPECT_TRUE(has_kind(v, ViolationKind::kMatrixMismatch))
      << planverify::to_json(v);
}

TEST_F(PlanVerifyCorruption, SurvivorAliasingUnknownIsFlagged) {
  Parts p = parts_of(valid_sub());
  ASSERT_FALSE(p.survivors.empty());
  p.survivors[0] = p.unknowns[0];  // read and write the same block
  const auto v = verify_corrupted(p);
  EXPECT_TRUE(has_kind(v, ViolationKind::kSourceAliasesTarget))
      << planverify::to_json(v);
  // An unknown is also faulty-and-unrecovered, so it is a forbidden read.
  EXPECT_TRUE(has_kind(v, ViolationKind::kForbiddenSource))
      << planverify::to_json(v);
}

TEST_F(PlanVerifyCorruption, DuplicateRecoveryAcrossSubPlansIsFlagged) {
  const SubPlan sub = valid_sub();
  const CachedPlan twice = CachedPlan::assemble({sub, sub}, std::nullopt);
  const auto verdict = planverify::verify_plan(code_, scenario_, twice);
  EXPECT_TRUE(has_kind(verdict.violations, ViolationKind::kDuplicateRecovery))
      << planverify::to_json(verdict.violations);
}

TEST_F(PlanVerifyCorruption, EmptyPlanForNonEmptyScenarioIsMissingRecovery) {
  const CachedPlan empty = CachedPlan::assemble({}, std::nullopt);
  const auto verdict = planverify::verify_plan(code_, scenario_, empty);
  EXPECT_TRUE(has_kind(verdict.violations, ViolationKind::kMissingRecovery))
      << planverify::to_json(verdict.violations);
}

TEST_F(PlanVerifyCorruption, RecoveringNonFaultyBlockIsUnexpected) {
  const CachedPlan plan =
      CachedPlan::assemble({valid_sub()}, std::nullopt);
  const FailureScenario smaller({0});  // block 1 is not actually faulty
  const auto verdict = planverify::verify_plan(code_, smaller, plan);
  EXPECT_TRUE(
      has_kind(verdict.violations, ViolationKind::kUnexpectedRecovery))
      << planverify::to_json(verdict.violations);
}

// ---------------------------------------------------------------------------
// XOR-schedule corruption: the symbolic replay must catch every hazard the
// incremental-target contract of decode/xor_schedule.h forbids.

class XorVerifyCorruption : public ::testing::Test {
 protected:
  // Row 1 differs from row 0 in one position, so the planner computes
  // target 1 incrementally: copy target 0, then one fix-up XOR.
  XorVerifyCorruption()
      : g_(gf::field(8), 2, 4, {1, 1, 1, 0, 1, 1, 1, 1}),
        schedule_(*plan_xor_schedule(g_)) {
    EXPECT_TRUE(std::any_of(
        schedule_.ops.begin(), schedule_.ops.end(),
        [](const XorOp& op) { return op.from_output; }));
    EXPECT_TRUE(planverify::verify_xor_schedule(g_, schedule_).ok());
  }

  Matrix g_;
  XorSchedule schedule_;
};

TEST_F(XorVerifyCorruption, SwappedOpOrderIsReadBeforeFinal) {
  XorSchedule bad = schedule_;
  const auto it = std::find_if(bad.ops.begin(), bad.ops.end(),
                               [](const XorOp& op) { return op.from_output; });
  ASSERT_NE(it, bad.ops.end());
  // Hoist the incremental base-copy to the front: it now reads target 0
  // before any op has produced it.
  std::rotate(bad.ops.begin(), it, it + 1);
  const auto verdict = planverify::verify_xor_schedule(g_, bad);
  EXPECT_TRUE(
      has_kind(verdict.violations, ViolationKind::kXorReadBeforeFinal))
      << planverify::to_json(verdict.violations);
}

TEST_F(XorVerifyCorruption, SwappedFirstOpsLoseTheOverwrite) {
  XorSchedule bad = schedule_;
  ASSERT_GE(bad.ops.size(), 2u);
  ASSERT_EQ(bad.ops[0].target, bad.ops[1].target);
  std::swap(bad.ops[0], bad.ops[1]);  // first op on the target is now a XOR
  const auto verdict = planverify::verify_xor_schedule(g_, bad);
  EXPECT_TRUE(
      has_kind(verdict.violations, ViolationKind::kXorMissingOverwrite))
      << planverify::to_json(verdict.violations);
  EXPECT_TRUE(
      has_kind(verdict.violations, ViolationKind::kXorOverwriteAfterWrite))
      << planverify::to_json(verdict.violations);
}

TEST_F(XorVerifyCorruption, WrongSourceColumnChangesTheResult) {
  XorSchedule bad = schedule_;
  const auto it =
      std::find_if(bad.ops.begin(), bad.ops.end(), [](const XorOp& op) {
        return !op.from_output && op.source == 0;
      });
  ASSERT_NE(it, bad.ops.end());
  it->source = 3;
  const auto verdict = planverify::verify_xor_schedule(g_, bad);
  EXPECT_TRUE(has_kind(verdict.violations, ViolationKind::kXorWrongResult))
      << planverify::to_json(verdict.violations);
}

TEST_F(XorVerifyCorruption, OutOfBoundsSourceIsFlagged) {
  XorSchedule bad = schedule_;
  ASSERT_FALSE(bad.ops[0].from_output);
  bad.ops[0].source = g_.cols() + 5;
  const auto verdict = planverify::verify_xor_schedule(g_, bad);
  EXPECT_TRUE(
      has_kind(verdict.violations, ViolationKind::kXorIndexOutOfBounds))
      << planverify::to_json(verdict.violations);
}

TEST_F(XorVerifyCorruption, InflatedNaiveOpsIsCostMismatch) {
  XorSchedule bad = schedule_;
  bad.naive_ops += 3;
  const auto verdict = planverify::verify_xor_schedule(g_, bad);
  EXPECT_TRUE(has_kind(verdict.violations, ViolationKind::kXorCostMismatch))
      << planverify::to_json(verdict.violations);
}

TEST(XorVerify, NonBinaryMatrixIsRejected) {
  const Matrix g(gf::field(8), 1, 2, {1, 3});
  const XorSchedule empty;
  const auto verdict = planverify::verify_xor_schedule(g, empty);
  EXPECT_TRUE(has_kind(verdict.violations, ViolationKind::kXorNotBinary));
}

TEST(XorVerify, AllZeroRowFixupVerifies) {
  const Matrix g(gf::field(8), 2, 3, {1, 0, 1, 0, 0, 0});
  const auto sched = plan_xor_schedule(g);
  ASSERT_TRUE(sched.has_value());
  const auto verdict = planverify::verify_xor_schedule(g, *sched);
  EXPECT_TRUE(verdict.ok()) << planverify::to_json(verdict.violations);
}

// ---------------------------------------------------------------------------
// Sweep: every plan the library builds for the seed code families across
// failure scenarios must be verifier-clean, and every XOR schedule planned
// from a binary applied matrix must survive symbolic replay.

void expect_clean_plans(const ErasureCode& code) {
  Codec codec(code);
  std::size_t verified = 0;

  const auto check = [&](const FailureScenario& sc) {
    const auto plan = codec.plan_for(sc);
    if (plan == nullptr) return;  // beyond tolerance: nothing to verify
    const auto verdict = planverify::verify_plan(code, sc, *plan);
    EXPECT_TRUE(verdict.ok())
        << code.name() << ": " << planverify::to_json(verdict.violations);
    const auto check_schedule = [&](const SubPlan& sub) {
      const Matrix& applied =
          sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
      const auto sched = plan_xor_schedule(applied);
      if (!sched.has_value()) return;
      const auto xv = planverify::verify_xor_schedule(applied, *sched);
      EXPECT_TRUE(xv.ok())
          << code.name() << ": " << planverify::to_json(xv.violations);
    };
    for (const SubPlan& sub : plan->groups()) check_schedule(sub);
    if (plan->rest().has_value()) check_schedule(*plan->rest());
    ++verified;
  };

  // Every single-block failure.
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    check(FailureScenario({b}));
  }
  // Every pair of whole-disk failures.
  for (std::size_t d1 = 0; d1 < code.disks(); ++d1) {
    for (std::size_t d2 = d1 + 1; d2 < code.disks(); ++d2) {
      std::vector<std::size_t> faulty;
      for (std::size_t row = 0; row < code.rows(); ++row) {
        faulty.push_back(code.block_id(row, d1));
        faulty.push_back(code.block_id(row, d2));
      }
      check(FailureScenario(faulty));
    }
  }
  // Mixed disk + sector failures from the generator.
  ScenarioGenerator gen(99);
  for (int i = 0; i < 8; ++i) {
    check(gen.disk_failures(code, 1 + i % 2).scenario);
  }
  EXPECT_GT(verified, 0u) << code.name();
}

TEST(PlanVerifySweep, RS) { expect_clean_plans(RSCode(10, 4, 8)); }
TEST(PlanVerifySweep, CRS) { expect_clean_plans(CRSCode(6, 3, 8)); }
TEST(PlanVerifySweep, SD) { expect_clean_plans(SDCode(6, 8, 2, 2, 8)); }
TEST(PlanVerifySweep, PMDS) { expect_clean_plans(PMDSCode(6, 6, 2, 2, 8)); }
TEST(PlanVerifySweep, LRC) { expect_clean_plans(LRCCode(12, 3, 2, 8)); }
TEST(PlanVerifySweep, XorbasLRC) {
  expect_clean_plans(XorbasLRCCode(10, 2, 4, 8));
}
TEST(PlanVerifySweep, EvenOdd) { expect_clean_plans(EvenOddCode(7)); }
TEST(PlanVerifySweep, RDP) { expect_clean_plans(RDPCode(7)); }
TEST(PlanVerifySweep, Star) { expect_clean_plans(StarCode(7)); }

TEST(PlanVerifySweep, SdWorstCaseScenarios) {
  const SDCode code(8, 16, 2, 2, 16);
  Codec codec(code);
  ScenarioGenerator gen(3);
  for (std::size_t z = 1; z <= 2; ++z) {  // z <= s = 2
    const auto sc = gen.sd_worst_case(code, 2, 2, z).scenario;
    const auto plan = codec.plan_for(sc);
    ASSERT_NE(plan, nullptr);
    const auto verdict = planverify::verify_plan(code, sc, *plan);
    EXPECT_TRUE(verdict.ok()) << planverify::to_json(verdict.violations);
  }
}

// Violation JSON is the operator-facing export of `ppm_cli verify`; keep
// the format stable.
TEST(ViolationJson, FormatIsStable) {
  std::vector<Violation> v;
  v.push_back(Violation{ViolationKind::kSingularF, 2, planverify::kNoIndex,
                        "F is singular"});
  v.push_back(Violation{ViolationKind::kXorReadBeforeFinal,
                        planverify::kNoIndex, 7, "say \"hi\""});
  EXPECT_EQ(planverify::to_json(v),
            "[{\"kind\":\"singular_f\",\"sub_plan\":2,"
            "\"message\":\"F is singular\"},"
            "{\"kind\":\"xor_read_before_final\",\"op\":7,"
            "\"message\":\"say \\\"hi\\\"\"}]");
}

}  // namespace
}  // namespace ppm
