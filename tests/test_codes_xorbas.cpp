// Xorbas/Facebook-style LRC: structure and PPM interaction.
#include <gtest/gtest.h>

#include "codes/xorbas_lrc_code.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "test_util.h"

namespace ppm {
namespace {

TEST(XorbasLRC, Geometry1062) {
  // The canonical Facebook deployment shape: 10 data, 2 data-locals,
  // 4 globals, 1 global-local.
  const XorbasLRCCode code(10, 2, 4, 8);
  EXPECT_EQ(code.total_blocks(), 17u);
  EXPECT_EQ(code.check_rows(), 7u);
  EXPECT_EQ(code.parity_blocks().size(), 7u);
  EXPECT_NEAR(code.storage_cost(), 1.7, 1e-9);
  EXPECT_EQ(code.global_local_parity_block(), 16u);
}

TEST(XorbasLRC, GlobalLocalRowCoversGlobalsOnly) {
  const XorbasLRCCode code(10, 2, 4, 8);
  const Matrix& h = code.parity_check();
  const std::size_t row = 2 + 4;  // l + g
  for (std::size_t d = 0; d < 10; ++d) EXPECT_EQ(h(row, d), 0u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(h(row, code.global_parity_block(j)), 1u);
  }
  EXPECT_EQ(h(row, code.global_local_parity_block()), 1u);
}

TEST(XorbasLRC, ChecksIndependentAndEncodable) {
  const XorbasLRCCode code(10, 2, 4, 8);
  EXPECT_EQ(code.parity_check().rank(), code.check_rows());
  const Matrix f = code.parity_check().select_columns(code.parity_blocks());
  EXPECT_EQ(f.rank(), f.cols());
}

TEST(XorbasLRC, LostGlobalParityRepairsLocally) {
  // The raison d'être of the extra local: a single lost global parity is
  // an independent faulty block recovered from the parity group alone.
  const XorbasLRCCode code(10, 2, 4, 8);
  const std::size_t victim = code.global_parity_block(1);
  const std::vector<std::size_t> faulty{victim};
  const LogTable table = LogTable::build(code.parity_check(), faulty);
  const Partition part = make_partition(code.parity_check(), table);
  ASSERT_EQ(part.p(), 1u);
  EXPECT_TRUE(part.rest_empty());
  // The group uses the global-local row (cheap, 4 survivors), not a
  // Vandermonde row over all data (10+ survivors) — the partitioner
  // prefers lighter equations within a bucket.
  EXPECT_EQ(part.groups[0].rows, (std::vector<std::size_t>{2 + 4}));
}

TEST(XorbasLRC, MaximumParallelismScenario) {
  // One failure per data group + one global parity: p = l + 1 independent
  // repairs, empty rest.
  const XorbasLRCCode code(10, 2, 4, 8);
  const std::vector<std::size_t> faulty{0, 7, code.global_parity_block(0)};
  const LogTable table = LogTable::build(code.parity_check(), faulty);
  const Partition part = make_partition(code.parity_check(), table);
  EXPECT_EQ(part.p(), 3u);
  EXPECT_TRUE(part.rest_empty());
}

TEST(XorbasLRC, RoundTripWithBothDecoders) {
  const XorbasLRCCode code(10, 2, 4, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 560);
  const TraditionalDecoder trad(code);
  const PpmDecoder ppm_dec(code);
  // Several decodable patterns, including multi-failure globals.
  const FailureScenario scenarios[] = {
      FailureScenario({0}),
      FailureScenario({0, 5}),
      FailureScenario({0, 5, 16}),
      FailureScenario({0, 1, 12}),
      FailureScenario({10, 12, 13}),
  };
  for (const auto& sc : scenarios) {
    stripe.erase(sc);
    ASSERT_TRUE(trad.decode(sc, stripe.block_ptrs(), 512));
    ASSERT_TRUE(stripe.equals(snap));
    stripe.erase(sc);
    ASSERT_TRUE(ppm_dec.decode(sc, stripe.block_ptrs(), 512));
    ASSERT_TRUE(stripe.equals(snap));
  }
}

TEST(XorbasLRC, ParameterValidation) {
  EXPECT_THROW(XorbasLRCCode(0, 1, 1, 8), std::invalid_argument);
  EXPECT_THROW(XorbasLRCCode(4, 0, 1, 8), std::invalid_argument);
  EXPECT_THROW(XorbasLRCCode(4, 2, 0, 8), std::invalid_argument);
  EXPECT_THROW(XorbasLRCCode(4, 5, 1, 8), std::invalid_argument);
  EXPECT_THROW(XorbasLRCCode(200, 2, 3, 8), std::invalid_argument);
}

}  // namespace
}  // namespace ppm
