// Stripe buffers and the paper-faithful scenario generator.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>

#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "codes/sd_code.h"
#include "workload/scenario_gen.h"
#include "workload/stripe.h"

namespace ppm {
namespace {

TEST(Stripe, LayoutAndAlignment) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 4096);
  EXPECT_EQ(stripe.block_bytes(), 4096u);
  EXPECT_EQ(stripe.stripe_bytes(), 4096u * 24);
  for (std::size_t b = 0; b < code.total_blocks(); ++b) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(stripe.block(b)) % 64, 0u)
        << "block " << b;
  }
}

TEST(Stripe, RejectsBadBlockSizes) {
  const SDCode code(24, 16, 2, 2, 16);  // w=16: symbols are 2 bytes
  EXPECT_THROW(Stripe(code, 0), std::invalid_argument);
  EXPECT_THROW(Stripe(code, 4095), std::invalid_argument);  // odd
}

TEST(Stripe, FillZeroesParityAndRandomizesData) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 256);
  Rng rng(81);
  stripe.fill_data(rng);
  const std::vector<std::uint8_t> zeros(256, 0);
  for (const std::size_t b : code.parity_blocks()) {
    EXPECT_EQ(std::memcmp(stripe.block(b), zeros.data(), 256), 0);
  }
  // Data blocks are almost surely nonzero.
  bool any_nonzero = false;
  for (std::size_t i = 0; i < 256; ++i) any_nonzero |= (stripe.block(0)[i] != 0);
  EXPECT_TRUE(any_nonzero);
}

TEST(Stripe, EraseAndSnapshotRoundTrip) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 128);
  Rng rng(82);
  stripe.fill_data(rng);
  const auto snap = stripe.snapshot();
  EXPECT_TRUE(stripe.equals(snap));
  stripe.erase(FailureScenario({2, 6}));
  EXPECT_FALSE(stripe.equals(snap));
  EXPECT_FALSE(stripe.blocks_equal(snap, std::vector<std::size_t>{2}));
  EXPECT_TRUE(stripe.blocks_equal(snap, std::vector<std::size_t>{0, 1, 3}));
}

TEST(ScenarioGen, SdWorstCaseShape) {
  const SDCode code(8, 8, 2, 2, 8);
  ScenarioGenerator gen(83);
  for (int trial = 0; trial < 20; ++trial) {
    const auto g = gen.sd_worst_case(code, 2, 2, 1);
    EXPECT_EQ(g.scenario.count(), 2u * 8 + 2);
    // Exactly 2 whole disks fail.
    std::map<std::size_t, std::size_t> per_disk;
    for (const std::size_t b : g.scenario.faulty()) per_disk[b % 8]++;
    std::size_t whole = 0;
    std::set<std::size_t> sector_rows;
    for (const auto& [disk, cnt] : per_disk) {
      if (cnt == 8) {
        ++whole;
      } else {
        for (const std::size_t b : g.scenario.faulty()) {
          if (b % 8 == disk) sector_rows.insert(b / 8);
        }
      }
    }
    EXPECT_EQ(whole, 2u);
    EXPECT_EQ(sector_rows.size(), 1u);  // z = 1
  }
}

TEST(ScenarioGen, SdSectorsConfinedToZRows) {
  const SDCode code(8, 8, 1, 3, 8);
  ScenarioGenerator gen(84);
  for (const std::size_t z : {1u, 2u, 3u}) {
    const auto g = gen.sd_worst_case(code, 1, 3, z);
    std::map<std::size_t, std::size_t> per_disk;
    for (const std::size_t b : g.scenario.faulty()) per_disk[b % 8]++;
    std::set<std::size_t> rows;
    for (const std::size_t b : g.scenario.faulty()) {
      if (per_disk[b % 8] < 8) rows.insert(b / 8);
    }
    EXPECT_EQ(rows.size(), z);
  }
}

TEST(ScenarioGen, DeterministicUnderSeed) {
  const SDCode code(8, 8, 2, 2, 8);
  ScenarioGenerator a(85);
  ScenarioGenerator b(85);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(a.sd_worst_case(code, 2, 2, 1).scenario,
              b.sd_worst_case(code, 2, 2, 1).scenario);
  }
}

TEST(ScenarioGen, InvalidParametersThrow) {
  const SDCode code(8, 8, 2, 2, 8);
  ScenarioGenerator gen(86);
  EXPECT_THROW(gen.sd_worst_case(code, 2, 2, 3), std::invalid_argument);
  EXPECT_THROW(gen.sd_worst_case(code, 8, 2, 1), std::invalid_argument);
}

TEST(ScenarioGen, LrcOneFailurePerGroup) {
  const LRCCode code(12, 3, 2, 8);
  ScenarioGenerator gen(87);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = gen.lrc_failures(code, 3, 0);
    EXPECT_EQ(g.scenario.count(), 3u);
    // Each failure sits in a distinct local group (or is its parity).
    std::set<std::size_t> groups;
    for (const std::size_t b : g.scenario.faulty()) {
      if (b < code.k()) {
        groups.insert(code.group_of(b));
      } else {
        groups.insert(b - code.k());  // local parity index
      }
    }
    EXPECT_EQ(groups.size(), 3u);
  }
}

TEST(ScenarioGen, LrcScenariosAreDecodable) {
  const LRCCode code(12, 3, 2, 8);
  ScenarioGenerator gen(88);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = gen.lrc_failures(code, 2, 1);
    const Matrix f = code.parity_check().select_columns(g.scenario.faulty());
    EXPECT_EQ(f.rank(), f.cols());
  }
}

TEST(ScenarioGen, RsFailuresBounded) {
  const RSCode code(10, 4, 8);
  ScenarioGenerator gen(89);
  const auto g = gen.rs_failures(code, 4);
  EXPECT_EQ(g.scenario.count(), 4u);
  EXPECT_EQ(g.redraws, 0u);
  EXPECT_THROW(gen.rs_failures(code, 5), std::invalid_argument);
}

}  // namespace
}  // namespace ppm
