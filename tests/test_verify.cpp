// Syndrome-based stripe consistency checking and corruption localization.
#include <gtest/gtest.h>

#include "codes/lrc_code.h"
#include "codes/sd_code.h"
#include "test_util.h"
#include "workload/verify.h"

namespace ppm {
namespace {

TEST(Verify, FreshlyEncodedStripeIsConsistent) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 500);
  EXPECT_TRUE(stripe_consistent(code, stripe.block_ptrs(), 512));
  EXPECT_TRUE(violated_checks(code, stripe.block_ptrs(), 512).empty());
}

TEST(Verify, UnencodedStripeIsInconsistent) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 512);
  Rng rng(501);
  stripe.fill_data(rng);  // parities still zero
  EXPECT_FALSE(stripe_consistent(code, stripe.block_ptrs(), 512));
}

TEST(Verify, SingleByteCorruptionDetected) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 502);
  stripe.block(7)[100] ^= 0x01;  // one flipped bit
  EXPECT_FALSE(stripe_consistent(code, stripe.block_ptrs(), 512));
}

TEST(Verify, ViolatedChecksMatchBlockSignature) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 503);
  const std::size_t victim = 8;  // row 1, disk 2
  stripe.block(victim)[0] ^= 0xFF;
  const auto violated = violated_checks(code, stripe.block_ptrs(), 512);
  // Exactly the rows whose column for the victim is nonzero must trip.
  std::vector<std::size_t> expect;
  const Matrix& h = code.parity_check();
  for (std::size_t row = 0; row < h.rows(); ++row) {
    if (h(row, victim) != 0) expect.push_back(row);
  }
  EXPECT_EQ(violated, expect);
}

TEST(Verify, LocateSingleCorruption) {
  const SDCode code(6, 4, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 504);
  const std::size_t victim = 14;
  stripe.block(victim)[3] ^= 0x40;
  const auto candidates =
      locate_single_corruption(code, stripe.block_ptrs(), 512);
  // The victim must be among the candidates (its whole stripe row shares
  // the same check signature, so siblings can appear too).
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), victim),
            candidates.end());
  // Every candidate lives in the same stripe row as the victim.
  for (const std::size_t c : candidates) {
    EXPECT_EQ(c / code.disks(), victim / code.disks());
  }
}

TEST(Verify, LocateReturnsEmptyOnCleanStripe) {
  const LRCCode code(8, 2, 2, 8);
  Stripe stripe(code, 256);
  test::fill_and_encode(code, stripe, 505);
  EXPECT_TRUE(locate_single_corruption(code, stripe.block_ptrs(), 256).empty());
}

TEST(Verify, ConsistencyRestoredAfterDecode) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 506);
  ScenarioGenerator gen(507);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  EXPECT_FALSE(stripe_consistent(code, stripe.block_ptrs(), 512));
  const PpmDecoder dec(code);
  ASSERT_TRUE(dec.decode(g.scenario, stripe.block_ptrs(), 512));
  EXPECT_TRUE(stripe_consistent(code, stripe.block_ptrs(), 512));
}

}  // namespace
}  // namespace ppm
