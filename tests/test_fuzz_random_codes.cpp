// Fuzz-style property tests over *random* parity-check codes.
//
// PPM's correctness argument (DESIGN.md §6) does not depend on any named
// construction: for an arbitrary parity-check matrix, whenever the
// traditional decode succeeds, PPM must succeed and produce identical
// bytes. These tests generate random sparse codes and random failures and
// check exactly that, plus the cost dominance min(C3,C4) <= C1 whenever a
// partition exists.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "test_util.h"

namespace ppm {
namespace {

// A code defined by an arbitrary (random) parity-check matrix.
class RandomCode : public ErasureCode {
 public:
  RandomCode(unsigned w, std::size_t blocks, std::size_t checks,
             double density, Rng& rng)
      : ErasureCode(gf::field(w), blocks, 1, checks, "random") {
    const gf::Field& f = field();
    for (;;) {
      for (std::size_t i = 0; i < checks; ++i) {
        for (std::size_t b = 0; b < blocks; ++b) {
          const bool nz = rng.bounded(1000) < density * 1000;
          h_(i, b) = nz ? static_cast<gf::Element>(
                              1 + rng.bounded(f.max_element()))
                        : 0;
        }
      }
      if (h_.rank() != checks) continue;  // rank-deficient draw
      // Designate the last `checks` columns as parity; the draw is only
      // accepted when that restriction is invertible (encodable).
      parity_.clear();
      for (std::size_t b = blocks - checks; b < blocks; ++b) {
        parity_.push_back(b);
      }
      const Matrix f = h_.select_columns(parity_);
      if (f.rank() == f.cols()) break;
    }
  }
};

class RandomCodeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RandomCodeFuzz, PpmAgreesWithTraditionalWheneverDecodable) {
  Rng rng(7000 + GetParam());
  const unsigned w = GetParam() % 2 == 0 ? 8 : 16;
  const std::size_t blocks = 12 + rng.bounded(20);
  const std::size_t checks = 3 + rng.bounded(6);
  const double density = 0.25 + 0.05 * (GetParam() % 10);
  RandomCode code(w, blocks, checks, density, rng);

  const std::size_t block_bytes = 32 * code.field().symbol_bytes();
  Stripe stripe(code, block_bytes);
  const auto snap = test::fill_and_encode(code, stripe, 7100 + GetParam());

  const TraditionalDecoder trad(code);
  const PpmDecoder ppm_dec(code);
  for (int trial = 0; trial < 8; ++trial) {
    // Random failure of random size (possibly undecodable).
    const std::size_t count = 1 + rng.bounded(checks + 1);
    std::vector<std::size_t> faulty;
    while (faulty.size() < count) {
      const std::size_t b = rng.bounded(blocks);
      if (std::find(faulty.begin(), faulty.end(), b) == faulty.end()) {
        faulty.push_back(b);
      }
    }
    const FailureScenario sc(faulty);

    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(sc);
    const auto tr = trad.decode(sc, stripe.block_ptrs(), block_bytes);
    const bool trad_ok = tr.has_value() && stripe.equals(snap);

    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(sc);
    const auto pr = ppm_dec.decode(sc, stripe.block_ptrs(), block_bytes);
    const bool ppm_ok = pr.has_value() && stripe.equals(snap);

    // Agreement on decodability and on bytes.
    ASSERT_EQ(tr.has_value(), pr.has_value()) << "trial " << trial;
    if (tr.has_value()) {
      ASSERT_TRUE(trad_ok) << "trial " << trial;
      ASSERT_TRUE(ppm_ok) << "trial " << trial;
      // The realized PPM cost is exactly what the cost model predicts.
      const auto costs = analyze_costs(code, sc);
      ASSERT_TRUE(costs.has_value());
      EXPECT_EQ(pr->stats.mult_xors, costs->ppm_best()) << "trial " << trial;
      // The plan the codec would cache for this scenario must be
      // statically provable sound.
      Codec codec(code);
      const auto plan = codec.plan_for(sc);
      ASSERT_NE(plan, nullptr) << "trial " << trial;
      const auto verdict = planverify::verify_plan(code, sc, *plan);
      EXPECT_TRUE(verdict.ok())
          << "trial " << trial << ": "
          << planverify::to_json(verdict.violations);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCodeFuzz, ::testing::Range(0, 24));

TEST(RandomCodeFuzz, CostModelConsistentOnRandomCodes) {
  Rng rng(7777);
  for (int trial = 0; trial < 20; ++trial) {
    RandomCode code(8, 16 + rng.bounded(10), 4 + rng.bounded(4), 0.4, rng);
    std::vector<std::size_t> faulty;
    const std::size_t count = 1 + rng.bounded(4);
    while (faulty.size() < count) {
      const std::size_t b = rng.bounded(code.total_blocks());
      if (std::find(faulty.begin(), faulty.end(), b) == faulty.end()) {
        faulty.push_back(b);
      }
    }
    const FailureScenario sc(faulty);
    const auto costs = analyze_costs(code, sc);
    if (!costs.has_value()) continue;
    // Relations that hold by construction.
    EXPECT_EQ(costs->ppm_best(), std::min(costs->c3, costs->c4));
    EXPECT_GT(costs->c1, 0u);
    EXPECT_GT(costs->c2, 0u);
  }
}

}  // namespace
}  // namespace ppm
