// Row selection for over-determined decoding systems.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "matrix/matrix.h"
#include "matrix/solve.h"

namespace ppm {
namespace {

TEST(IndependentRows, SquareInvertibleReturnsAllRows) {
  const gf::Field& f = gf::field(8);
  const Matrix m(f, 2, 2, {1, 2, 3, 4});
  const auto sel = independent_rows(m);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(*sel, (std::vector<std::size_t>{0, 1}));
}

TEST(IndependentRows, PrefersEarlierRows) {
  const gf::Field& f = gf::field(8);
  // Rows 0 and 1 already span; rows 2 and 3 are redundant copies.
  const Matrix m(f, 4, 2, {1, 0, 0, 1, 1, 0, 0, 1});
  const auto sel = independent_rows(m);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(*sel, (std::vector<std::size_t>{0, 1}));
}

TEST(IndependentRows, SkipsDependentPrefix) {
  const gf::Field& f = gf::field(8);
  // Row 1 duplicates row 0; selection must reach row 2.
  const Matrix m(f, 3, 2, {1, 2, 1, 2, 0, 1});
  const auto sel = independent_rows(m);
  ASSERT_TRUE(sel.has_value());
  EXPECT_EQ(*sel, (std::vector<std::size_t>{0, 2}));
  // The selected square submatrix really is invertible.
  EXPECT_TRUE(m.select_rows(*sel).inverse().has_value());
}

TEST(IndependentRows, RankDeficientReturnsNullopt) {
  const gf::Field& f = gf::field(8);
  const Matrix m(f, 3, 2, {1, 2, 2, 4, 3, 6});  // all rows parallel
  EXPECT_FALSE(independent_rows(m).has_value());
}

TEST(IndependentRows, WideMatrixReturnsNullopt) {
  EXPECT_FALSE(independent_rows(Matrix(gf::field(8), 2, 3)).has_value());
}

TEST(IndependentRows, ZeroColumnsMatrix) {
  // Degenerate but legal: zero unknowns need zero rows.
  const auto sel = independent_rows(Matrix(gf::field(8), 3, 0));
  ASSERT_TRUE(sel.has_value());
  EXPECT_TRUE(sel->empty());
}

TEST(IndependentRows, RandomTallSystemsSelectionIsInvertible) {
  Rng rng(31);
  const gf::Field& f = gf::field(16);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t cols = 1 + rng.bounded(8);
    const std::size_t rows = cols + rng.bounded(6);
    Matrix m(f, rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        m(r, c) = static_cast<gf::Element>(rng.next()) & f.max_element();
      }
    }
    const auto sel = independent_rows(m);
    if (m.rank() < cols) {
      EXPECT_FALSE(sel.has_value());
    } else {
      ASSERT_TRUE(sel.has_value());
      ASSERT_EQ(sel->size(), cols);
      EXPECT_TRUE(std::is_sorted(sel->begin(), sel->end()));
      EXPECT_TRUE(m.select_rows(*sel).inverse().has_value());
    }
  }
}

}  // namespace
}  // namespace ppm
