// LRC construction: groups, parity rows, storage cost, validation.
#include <gtest/gtest.h>

#include "codes/lrc_code.h"

namespace ppm {
namespace {

TEST(LRCCode, PaperExample422) {
  // (4,2,2)-LRC from the paper's Fig. 1: 4 data, 2 local, 2 global.
  const LRCCode code(4, 2, 2, 8);
  EXPECT_EQ(code.total_blocks(), 8u);
  EXPECT_EQ(code.check_rows(), 4u);
  EXPECT_EQ(code.k(), 4u);
  EXPECT_EQ(code.l(), 2u);
  EXPECT_EQ(code.g(), 2u);
  EXPECT_EQ(code.rows(), 1u);  // strip-granular
  EXPECT_DOUBLE_EQ(code.storage_cost(), 2.0);
}

TEST(LRCCode, LocalRowsAreGroupXor) {
  const LRCCode code(4, 2, 2, 8);
  const Matrix& h = code.parity_check();
  // Group 0 = {0, 1}, local parity block 4; group 1 = {2, 3}, parity 5.
  EXPECT_EQ(h(0, 0), 1u);
  EXPECT_EQ(h(0, 1), 1u);
  EXPECT_EQ(h(0, 2), 0u);
  EXPECT_EQ(h(0, 4), 1u);
  EXPECT_EQ(h(0, 5), 0u);
  EXPECT_EQ(h(1, 2), 1u);
  EXPECT_EQ(h(1, 3), 1u);
  EXPECT_EQ(h(1, 5), 1u);
}

TEST(LRCCode, GlobalRowsSpanAllData) {
  const LRCCode code(6, 2, 2, 8);
  const Matrix& h = code.parity_check();
  for (std::size_t j = 0; j < 2; ++j) {
    for (std::size_t d = 0; d < 6; ++d) {
      EXPECT_NE(h(2 + j, d), 0u) << "global " << j << " data " << d;
    }
    EXPECT_EQ(h(2 + j, code.global_parity_block(j)), 1u);
    // A global row must not touch local parities or the other global.
    EXPECT_EQ(h(2 + j, code.local_parity_block(0)), 0u);
    EXPECT_EQ(h(2 + j, code.global_parity_block(1 - j)), 0u);
  }
}

TEST(LRCCode, LocalParityArityIsKOverL) {
  // Asymmetry (the paper's defining property): local parity is computed
  // from k/l blocks, global parity from k blocks.
  const LRCCode code(12, 3, 2, 8);
  const Matrix& h = code.parity_check();
  std::size_t local_arity = 0;
  std::size_t global_arity = 0;
  for (std::size_t d = 0; d < 12; ++d) {
    local_arity += (h(0, d) != 0);
    global_arity += (h(3, d) != 0);
  }
  EXPECT_EQ(local_arity, 4u);    // k/l = 12/3
  EXPECT_EQ(global_arity, 12u);  // k
}

TEST(LRCCode, GroupHelpers) {
  const LRCCode code(10, 3, 2, 8);  // group size ceil(10/3) = 4
  EXPECT_EQ(code.group_of(0), 0u);
  EXPECT_EQ(code.group_of(3), 0u);
  EXPECT_EQ(code.group_of(4), 1u);
  EXPECT_EQ(code.group_of(9), 2u);
  EXPECT_EQ(code.group_members(0),
            (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(code.group_members(2), (std::vector<std::size_t>{8, 9}));
  EXPECT_EQ(code.local_parity_block(1), 11u);
  EXPECT_EQ(code.global_parity_block(0), 13u);
}

TEST(LRCCode, StorageCostSweep) {
  // The Fig. 11 x-axis: cost = (k+l+g)/k.
  EXPECT_NEAR(LRCCode(20, 2, 2, 8).storage_cost(), 1.2, 1e-9);
  EXPECT_NEAR(LRCCode(10, 2, 2, 8).storage_cost(), 1.4, 1e-9);
  EXPECT_NEAR(LRCCode(10, 4, 3, 8).storage_cost(), 1.7, 1e-9);
}

TEST(LRCCode, ChecksAreIndependent) {
  const LRCCode code(12, 4, 3, 8);
  EXPECT_EQ(code.parity_check().rank(), code.check_rows());
}

TEST(LRCCode, EncodingSystemSolvable) {
  const LRCCode code(12, 4, 3, 8);
  const Matrix f = code.parity_check().select_columns(code.parity_blocks());
  EXPECT_EQ(f.rank(), f.cols());
}

TEST(LRCCode, ParameterValidation) {
  EXPECT_THROW(LRCCode(0, 1, 1, 8), std::invalid_argument);
  EXPECT_THROW(LRCCode(4, 0, 1, 8), std::invalid_argument);
  EXPECT_THROW(LRCCode(4, 2, 0, 8), std::invalid_argument);
  EXPECT_THROW(LRCCode(4, 5, 1, 8), std::invalid_argument);   // l > k
  EXPECT_THROW(LRCCode(200, 2, 3, 8), std::invalid_argument);  // field small
}

}  // namespace
}  // namespace ppm
