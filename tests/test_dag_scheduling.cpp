// The executors must actually consume the hazard DAG: LPT lane placement
// of group units (hazard::place_lpt vs. the Algorithm-1 round-robin
// baseline), the completion-signaling DAG runner (parallel/dag_executor),
// and the unit-parallel XOR-schedule executor, which must stay
// byte-identical to the serial executor across every code family and fall
// back to serial whenever the schedule is not provably unit-safe.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "test_util.h"

namespace ppm {
namespace {

using planverify::ViolationKind;

// ---------------------------------------------------------------------------
// Placement: LPT vs round-robin.

TEST(Placement, LptBeatsRoundRobinOnSkewedWork) {
  // Round-robin pairs both heavy units onto lane 0 (indices 0 and 4);
  // LPT splits them.
  const std::vector<std::size_t> work = {10, 1, 1, 1, 10, 1};
  const auto lpt = hazard::place_lpt(work, 2);
  const auto rr = hazard::place_round_robin(work, 2);
  EXPECT_EQ(rr.makespan, 21u);  // 10 + 1 + 10
  EXPECT_EQ(lpt.makespan, 12u);
  EXPECT_LT(lpt.makespan, rr.makespan);
}

TEST(Placement, LptStaysWithinGrahamBound) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + rng.bounded(16);
    const unsigned lanes = 1 + static_cast<unsigned>(rng.bounded(6));
    std::vector<std::size_t> work(n);
    std::size_t total = 0;
    std::size_t heaviest = 0;
    for (auto& w : work) {
      w = 1 + rng.bounded(100);
      total += w;
      heaviest = std::max(heaviest, w);
    }
    const auto placed = hazard::place_lpt(work, lanes);
    // Graham's bound for list scheduling, and the trivial floors.
    EXPECT_LE(placed.makespan, total / placed.lanes + heaviest);
    EXPECT_GE(placed.makespan, heaviest);
    EXPECT_GE(placed.makespan * placed.lanes, total);
  }
}

TEST(Placement, AssignmentIsConsistentAndDeterministic) {
  const std::vector<std::size_t> work = {7, 3, 3, 2};
  const auto a = hazard::place_lpt(work, 2);
  const auto b = hazard::place_lpt(work, 2);
  EXPECT_EQ(a.lane_of, b.lane_of);
  EXPECT_EQ(a.makespan, 8u);  // {7} vs {3, 3, 2}
  // lane_of, lane_units and lane_work tell one coherent story.
  std::size_t placed_units = 0;
  for (std::size_t l = 0; l < a.lane_units.size(); ++l) {
    std::size_t sum = 0;
    for (const std::size_t u : a.lane_units[l]) {
      EXPECT_EQ(a.lane_of[u], l);
      sum += work[u];
      ++placed_units;
    }
    EXPECT_EQ(a.lane_work[l], sum);
  }
  EXPECT_EQ(placed_units, work.size());
}

TEST(Placement, LanesNeverExceedUnits) {
  const std::vector<std::size_t> work = {5, 4};
  const auto placed = hazard::place_lpt(work, 8);
  EXPECT_EQ(placed.lanes, 2u);
  EXPECT_EQ(placed.lane_units.size(), 2u);
  EXPECT_EQ(placed.makespan, 5u);
  const auto one = hazard::place_round_robin(work, 0);
  EXPECT_EQ(one.lanes, 1u);
  EXPECT_EQ(one.makespan, 9u);
}

// ---------------------------------------------------------------------------
// Completion-signaling DAG runner.

TEST(DagExecutor, RunsEveryUnitOnceRespectingEdges) {
  // Diamond over 6 units plus an isolated pair.
  const std::vector<std::pair<std::size_t, std::size_t>> edges = {
      {0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}};
  for (const unsigned threads : {1u, 2u, 4u}) {
    std::mutex mu;
    std::vector<std::size_t> finish_order;
    const auto report = run_unit_dag(
        6, edges, threads,
        [&](std::size_t u) {
          const std::scoped_lock lock(mu);
          finish_order.push_back(u);
        });
    ASSERT_TRUE(report.ran) << "threads=" << threads;
    EXPECT_GE(report.workers_used, 1u);
    ASSERT_EQ(finish_order.size(), 6u);
    std::vector<std::size_t> position(6);
    for (std::size_t i = 0; i < finish_order.size(); ++i) {
      position[finish_order[i]] = i;
    }
    for (const auto& [from, to] : edges) {
      EXPECT_LT(position[from], position[to])
          << from << "->" << to << " with threads=" << threads;
    }
  }
}

TEST(DagExecutor, RefusesCyclesWithoutRunningAnything) {
  const std::vector<std::pair<std::size_t, std::size_t>> edges = {
      {0, 1}, {1, 2}, {2, 0}};
  std::atomic<std::size_t> runs{0};
  for (const unsigned threads : {1u, 4u}) {
    const auto report =
        run_unit_dag(3, edges, threads, [&](std::size_t) { ++runs; });
    EXPECT_FALSE(report.ran);
  }
  EXPECT_EQ(runs.load(), 0u);
}

TEST(DagExecutor, SerialOrderIsPriorityAwareTopological) {
  // Two independent chains; heavier units must be dispatched first among
  // the simultaneously ready.
  const std::vector<std::pair<std::size_t, std::size_t>> edges = {{0, 1},
                                                                  {2, 3}};
  const std::vector<std::size_t> weight = {1, 1, 9, 9};
  std::vector<std::size_t> order;
  const auto report = run_unit_dag(
      4, edges, 1, [&](std::size_t u) { order.push_back(u); }, weight);
  ASSERT_TRUE(report.ran);
  EXPECT_EQ(report.workers_used, 1u);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 3, 0, 1}));
}

// ---------------------------------------------------------------------------
// Unit-parallel XOR execution.

std::vector<std::vector<std::uint8_t>> run_schedule(
    const XorSchedule& schedule, std::size_t rows, std::size_t cols,
    std::size_t bytes, std::uint64_t seed, unsigned threads,
    ParallelXorReport* report = nullptr) {
  Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> sources(cols);
  std::vector<std::uint8_t*> src(cols);
  for (std::size_t c = 0; c < cols; ++c) {
    sources[c] = test::random_bytes(rng, bytes);
    src[c] = sources[c].data();
  }
  std::vector<std::vector<std::uint8_t>> targets(
      rows, std::vector<std::uint8_t>(bytes, 0xEE));
  std::vector<std::uint8_t*> tgt(rows);
  for (std::size_t r = 0; r < rows; ++r) tgt[r] = targets[r].data();
  if (threads == 0) {
    execute_xor_schedule(schedule, src.data(), tgt.data(), bytes);
  } else {
    const auto rep = execute_xor_schedule_parallel(
        schedule, rows, src.data(), tgt.data(), bytes, threads);
    if (report != nullptr) *report = rep;
  }
  return targets;
}

TEST(XorScheduleParallel, ByteIdenticalOnRandomBinaryMatrices) {
  Rng rng(800);
  std::size_t engaged = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t rows = 2 + rng.bounded(12);
    const std::size_t cols = 1 + rng.bounded(24);
    Matrix g(gf::field(8), rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        g(r, c) = rng.bounded(100) < 45 ? 1 : 0;
      }
    }
    const auto schedule = plan_xor_schedule(g);
    ASSERT_TRUE(schedule.has_value());
    const std::uint64_t seed = 801 + trial;
    const auto serial = run_schedule(*schedule, rows, cols, 96, seed, 0);
    ParallelXorReport report;
    const auto parallel =
        run_schedule(*schedule, rows, cols, 96, seed, 4, &report);
    EXPECT_EQ(serial, parallel) << "trial " << trial;
    if (report.parallel) ++engaged;
  }
  // The planner's schedules have real width; the parallel path must not
  // be falling back across the board.
  EXPECT_GT(engaged, 0u);
}

TEST(XorScheduleParallel, ByteIdenticalAcrossEveryFamily) {
  // Every binary sub-system the real planner produces, for all 9 code
  // families, run both ways and compared bytewise.
  std::vector<std::unique_ptr<ErasureCode>> codes;
  codes.push_back(std::make_unique<SDCode>(8, 16, 2, 2, 8));
  codes.push_back(std::make_unique<PMDSCode>(8, 16, 2, 2, 8));
  codes.push_back(std::make_unique<LRCCode>(12, 3, 2, 8));
  codes.push_back(std::make_unique<XorbasLRCCode>(10, 2, 4, 8));
  codes.push_back(std::make_unique<RSCode>(10, 4, 8));
  codes.push_back(std::make_unique<CRSCode>(10, 4, 8));
  codes.push_back(std::make_unique<EvenOddCode>(7));
  codes.push_back(std::make_unique<RDPCode>(7));
  codes.push_back(std::make_unique<StarCode>(7));
  std::size_t schedules = 0;
  for (const auto& code : codes) {
    ScenarioGenerator gen(9);
    const auto sc = gen.disk_failures(*code, 2).scenario;
    Codec codec(*code);
    const auto plan = codec.plan_for(sc);
    ASSERT_NE(plan, nullptr) << code->name();
    const auto check = [&](const SubPlan& sub) {
      const Matrix& applied =
          sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
      const auto schedule = plan_xor_schedule(applied);
      if (!schedule.has_value()) return;  // non-binary system
      ++schedules;
      const std::uint64_t seed = 900 + schedules;
      const auto serial = run_schedule(*schedule, applied.rows(),
                                       applied.cols(), 128, seed, 0);
      const auto parallel = run_schedule(*schedule, applied.rows(),
                                         applied.cols(), 128, seed, 4);
      EXPECT_EQ(serial, parallel) << code->name();
    };
    for (const SubPlan& sub : plan->groups()) check(sub);
    if (plan->rest().has_value()) check(*plan->rest());
  }
  EXPECT_GT(schedules, 0u);
}

TEST(XorScheduleParallel, EngagesOnWideIndependentSchedule) {
  // 4 targets, no from_output edges: full width.
  const Matrix g(gf::field(8), 4, 4,
                 {1, 1, 0, 0,
                  0, 1, 1, 0,
                  0, 0, 1, 1,
                  1, 0, 0, 1});
  const auto schedule = plan_xor_schedule(g);
  ASSERT_TRUE(schedule.has_value());
  ParallelXorReport report;
  const auto parallel = run_schedule(*schedule, 4, 4, 64, 77, 4, &report);
  const auto serial = run_schedule(*schedule, 4, 4, 64, 77, 0);
  EXPECT_EQ(serial, parallel);
  EXPECT_TRUE(report.parallel);
  EXPECT_GE(report.workers, 2u);
  EXPECT_EQ(report.units, 4u);
  EXPECT_GE(report.max_width, 2u);
}

TEST(XorScheduleParallel, FallsBackOnInterleavedFromOutputUse) {
  // Target 1 copies target 0 before target 0 is finalized: legal serially
  // (verify_xor_schedule's read-before-final rule), but not safe to
  // unit-parallelize — the executor must detect it and run serially,
  // reproducing the serial (partial-value) semantics exactly.
  XorSchedule schedule;
  schedule.ops.push_back({false, 0, 0, true});   // t0 = s0
  schedule.ops.push_back({true, 0, 1, true});    // t1 = t0 (partial!)
  schedule.ops.push_back({false, 1, 0, false});  // t0 ^= s1
  ParallelXorReport report;
  const auto parallel = run_schedule(schedule, 2, 2, 64, 88, 4, &report);
  const auto serial = run_schedule(schedule, 2, 2, 64, 88, 0);
  EXPECT_FALSE(report.parallel);
  EXPECT_EQ(serial, parallel);
}

TEST(XorScheduleParallel, FallsBackWhenNoWidth) {
  // A pure chain: t0 -> t1 -> t2; width 1, nothing to overlap.
  XorSchedule schedule;
  schedule.ops.push_back({false, 0, 0, true});
  schedule.ops.push_back({true, 0, 1, true});
  schedule.ops.push_back({false, 1, 1, false});
  schedule.ops.push_back({true, 1, 2, true});
  schedule.ops.push_back({false, 0, 2, false});
  ParallelXorReport report;
  const auto parallel = run_schedule(schedule, 3, 2, 64, 99, 4, &report);
  const auto serial = run_schedule(schedule, 3, 2, 64, 99, 0);
  EXPECT_FALSE(report.parallel);
  EXPECT_EQ(serial, parallel);
}

TEST(XorScheduleParallel, FallsBackOnOutOfRangeTarget) {
  XorSchedule schedule;
  schedule.ops.push_back({false, 0, 0, true});
  schedule.ops.push_back({false, 0, 1, true});
  schedule.ops.push_back({false, 1, 5, true});  // target 5 of a 2-row system
  std::vector<std::vector<std::uint8_t>> targets(
      6, std::vector<std::uint8_t>(32, 0));
  std::vector<std::uint8_t*> tgt(6);
  for (std::size_t r = 0; r < 6; ++r) tgt[r] = targets[r].data();
  std::vector<std::uint8_t> s0(32, 0xAB);
  std::vector<std::uint8_t> s1(32, 0xCD);
  std::vector<std::uint8_t*> src = {s0.data(), s1.data()};
  const auto report = execute_xor_schedule_parallel(schedule, 2, src.data(),
                                                    tgt.data(), 32, 4);
  EXPECT_FALSE(report.parallel);  // malformed: serial semantics preserved
  EXPECT_EQ(targets[5], s1);
}

// ---------------------------------------------------------------------------
// The hazard pass must surface out-of-range ops (satellite bugfix): they
// previously vanished from the DAG via target_spans' silent skip.

TEST(HazardSchedule, OutOfRangeTargetIsReportedNotDropped) {
  const Matrix g(gf::field(8), 2, 2, {1, 1, 0, 1});
  XorSchedule schedule;
  schedule.ops.push_back({false, 0, 0, true});
  schedule.ops.push_back({false, 1, 0, false});
  schedule.ops.push_back({false, 0, 7, true});  // row 7 of a 2-row system
  schedule.ops.push_back({false, 0, 1, true});
  const auto analysis = hazard::analyze_schedule(schedule, g);
  ASSERT_FALSE(analysis.ok());
  EXPECT_TRUE(std::any_of(
      analysis.violations.begin(), analysis.violations.end(),
      [](const planverify::Violation& v) {
        return v.kind == ViolationKind::kXorIndexOutOfBounds && v.op == 2;
      }))
      << planverify::to_json(analysis.violations);
}

TEST(HazardSchedule, OutOfRangeFromOutputSourceIsReported) {
  const Matrix g(gf::field(8), 2, 2, {1, 1, 0, 1});
  XorSchedule schedule;
  schedule.ops.push_back({false, 0, 0, true});
  schedule.ops.push_back({true, 9, 1, true});  // reads target 9 of 2
  const auto analysis = hazard::analyze_schedule(schedule, g);
  ASSERT_FALSE(analysis.ok());
  EXPECT_TRUE(std::any_of(
      analysis.violations.begin(), analysis.violations.end(),
      [](const planverify::Violation& v) {
        return v.kind == ViolationKind::kXorIndexOutOfBounds && v.op == 1;
      }))
      << planverify::to_json(analysis.violations);
}

TEST(HazardSchedule, TargetSpansCollectsOutOfRangeOps) {
  XorSchedule schedule;
  schedule.ops.push_back({false, 0, 0, true});
  schedule.ops.push_back({false, 0, 3, true});
  schedule.ops.push_back({false, 0, 1, true});
  schedule.ops.push_back({false, 0, 4, false});
  std::vector<std::size_t> oob;
  const auto spans = target_spans(schedule, 2, &oob);
  EXPECT_EQ(oob, (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(spans[0].first_op, 0u);
  EXPECT_EQ(spans[1].first_op, 2u);
}

// ---------------------------------------------------------------------------
// PpmDecoder consumes the placement.

TEST(PpmPlacement, DecoderRecordsExecutedLanes) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 120);
  ScenarioGenerator gen(121);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  PpmOptions opts;
  opts.threads = 4;
  const PpmDecoder dec(code, opts);
  const auto res =
      dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(stripe.equals(snap));
  ASSERT_EQ(res->lane_of.size(), res->task_seconds.size());
  EXPECT_EQ(res->threads_used, std::min<unsigned>(4, res->p));
  for (const unsigned lane : res->lane_of) {
    EXPECT_LT(lane, res->threads_used);
  }
  // The executed makespan is bracketed by the critical path below and the
  // serial sum above.
  const double placed = res->placed_makespan_seconds();
  EXPECT_GE(placed, res->critical_path_seconds());
  double sum = 0;
  for (const double t : res->task_seconds) sum += t;
  EXPECT_LE(placed, sum + 1e-12);
}

TEST(PpmPlacement, LptModelBeatsRoundRobinOnSkewedGroups) {
  // Skewed scenario: one row carries 3 faults, three rows carry 1 each —
  // the group costs differ enough that on 2 lanes LPT strictly beats the
  // i mod T baseline in exact mult_XOR units.
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 122);
  ScenarioGenerator gen(123);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  Codec codec(code);
  const auto plan = codec.plan_for(g.scenario);
  ASSERT_NE(plan, nullptr);
  ASSERT_GE(plan->p(), 3u);
  std::vector<std::size_t> work;
  for (const SubPlan& sub : plan->groups()) work.push_back(sub.cost());
  // If the generator happened to produce near-uniform groups, skew them
  // deterministically: the property under test is the placer's.
  std::sort(work.begin(), work.end(), std::greater<>());
  work[0] = work[0] * 3 + 1;
  const auto lpt = hazard::place_lpt(work, 2);
  const auto rr = hazard::place_round_robin(work, 2);
  EXPECT_LT(lpt.makespan, rr.makespan) << "work skew did not materialize";
  // And LPT respects the Graham bound around the critical path.
  const std::size_t total = std::accumulate(work.begin(), work.end(),
                                            std::size_t{0});
  EXPECT_LE(lpt.makespan, total / 2 + work[0]);
}

TEST(PpmPlacement, OverheadModelChargesOnlySpawnedThreads) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 2048);
  test::fill_and_encode(code, stripe, 124);
  ScenarioGenerator gen(125);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  PpmOptions opts;
  opts.threads = 4;
  const PpmDecoder dec(code, opts);
  const auto res =
      dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  const std::size_t tasks = res->task_seconds.size();
  ASSERT_GT(tasks, 1u);
  // Asking the model for more lanes than tasks must charge only the
  // threads a real run would spawn: min(lanes, tasks).
  const double spawn = ThreadPool::thread_spawn_seconds();
  const unsigned lanes = static_cast<unsigned>(tasks) + 5;
  EXPECT_NEAR(res->modeled_seconds_with_overhead(lanes),
              res->modeled_seconds(lanes) +
                  static_cast<double>(tasks) * spawn,
              1e-12);
}

TEST(PpmPlacement, CodecRoutesThroughPlacedExecutor) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 126);
  ScenarioGenerator gen(127);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  Codec::Options copts;
  copts.threads = 4;
  Codec codec(code, copts);
  ASSERT_TRUE(codec.decode(g.scenario, stripe.block_ptrs(),
                           stripe.block_bytes()));
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(codec.metrics().placed_decodes.value(), 1u);
  EXPECT_EQ(codec.metrics().placed_fallbacks.value(), 0u);

  // A single-threaded codec must keep the serial path (and not count a
  // placed decode).
  Stripe stripe1(code, 512);
  const auto snap1 = test::fill_and_encode(code, stripe1, 128);
  stripe1.erase(g.scenario);
  Codec::Options serial_opts;
  serial_opts.threads = 1;
  Codec serial_codec(code, serial_opts);
  ASSERT_TRUE(serial_codec.decode(g.scenario, stripe1.block_ptrs(),
                                  stripe1.block_bytes()));
  EXPECT_TRUE(stripe1.equals(snap1));
  EXPECT_EQ(serial_codec.metrics().placed_decodes.value(), 0u);
}

}  // namespace
}  // namespace ppm
