// Cauchy Reed–Solomon bit-matrix code.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "codes/crs_code.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "test_util.h"

namespace ppm {
namespace {

TEST(CRSBitMatrix, MultiplicationProperty) {
  // M(a) applied to the bit vector of b equals the bit vector of a*b.
  for (const unsigned sub_w : {4u, 8u}) {
    // gf::field supports 8/16/32; use 8 here and skip 4.
    if (sub_w == 4) continue;
    const gf::Field& f = gf::field(sub_w);
    Rng rng(610);
    for (int trial = 0; trial < 100; ++trial) {
      const gf::Element a =
          static_cast<gf::Element>(rng.next()) & f.max_element();
      const gf::Element b =
          static_cast<gf::Element>(rng.next()) & f.max_element();
      const Matrix m = CRSCode::bit_matrix(a, sub_w);
      gf::Element out = 0;
      for (unsigned i = 0; i < sub_w; ++i) {
        unsigned bit = 0;
        for (unsigned j = 0; j < sub_w; ++j) {
          bit ^= (m(i, j) & 1u) & ((b >> j) & 1u);
        }
        out |= static_cast<gf::Element>(bit) << i;
      }
      EXPECT_EQ(out, f.mul(a, b)) << "a=" << a << " b=" << b;
    }
  }
}

TEST(CRSBitMatrix, IdentityAndZero) {
  const Matrix one = CRSCode::bit_matrix(1, 8);
  EXPECT_EQ(one, Matrix::identity(gf::field(8), 8));
  const Matrix zero = CRSCode::bit_matrix(0, 8);
  EXPECT_EQ(zero.nonzeros(), 0u);
}

TEST(CRSCode, Geometry) {
  const CRSCode code(6, 3, 8);
  EXPECT_EQ(code.disks(), 9u);
  EXPECT_EQ(code.rows(), 8u);  // packets
  EXPECT_EQ(code.total_blocks(), 72u);
  EXPECT_EQ(code.check_rows(), 24u);
  EXPECT_EQ(code.parity_blocks().size(), 24u);
  EXPECT_EQ(code.strip_blocks(2).size(), 8u);
}

TEST(CRSCode, AllCoefficientsBinary) {
  const CRSCode code(6, 3, 8);
  for (const gf::Element v : code.parity_check().data()) EXPECT_LE(v, 1u);
}

TEST(CRSCode, ChecksIndependentAndEncodable) {
  const CRSCode code(6, 3, 8);
  EXPECT_EQ(code.parity_check().rank(), code.check_rows());
  const Matrix f = code.parity_check().select_columns(code.parity_blocks());
  EXPECT_EQ(f.rank(), f.cols());
}

TEST(CRSCode, AnyMStripFailuresDecodable) {
  // MDS at strip granularity: exhaust all C(6,2) double-strip failures of
  // CRS(4, 2).
  const CRSCode code(4, 2, 8);
  const std::size_t n = code.disks();
  for (std::size_t s1 = 0; s1 < n; ++s1) {
    for (std::size_t s2 = s1 + 1; s2 < n; ++s2) {
      std::vector<std::size_t> faulty = code.strip_blocks(s1);
      const auto more = code.strip_blocks(s2);
      faulty.insert(faulty.end(), more.begin(), more.end());
      std::sort(faulty.begin(), faulty.end());
      const Matrix f = code.parity_check().select_columns(faulty);
      EXPECT_EQ(f.rank(), f.cols()) << s1 << "," << s2;
    }
  }
}

TEST(CRSCode, RoundTripBothDecoders) {
  const CRSCode code(6, 3, 8);
  Stripe stripe(code, 256);
  const auto snap = test::fill_and_encode(code, stripe, 611);
  // Three whole strips fail (the worst case).
  std::vector<std::size_t> faulty = code.strip_blocks(0);
  for (const std::size_t s : {4u, 7u}) {
    const auto more = code.strip_blocks(s);
    faulty.insert(faulty.end(), more.begin(), more.end());
  }
  const FailureScenario sc(faulty);
  const TraditionalDecoder trad(code);
  const PpmDecoder ppm_dec(code);
  stripe.erase(sc);
  ASSERT_TRUE(trad.decode(sc, stripe.block_ptrs(), 256));
  ASSERT_TRUE(stripe.equals(snap));
  stripe.erase(sc);
  ASSERT_TRUE(ppm_dec.decode(sc, stripe.block_ptrs(), 256));
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(CRSCode, DecodingIsXorOnly) {
  // Every region op of a CRS decode must take the c == 1 XOR fast path:
  // verify by checking the decode plan's matrices stay binary.
  const CRSCode code(4, 2, 8);
  std::vector<std::size_t> faulty = code.strip_blocks(1);
  std::sort(faulty.begin(), faulty.end());
  std::vector<std::size_t> all_rows(code.check_rows());
  std::iota(all_rows.begin(), all_rows.end(), 0);
  // The decoding matrix G = F^-1 * S is over GF(2^8) but its entries stem
  // from a binary system, hence stay 0/1.
  const auto costs = SubPlan::sequence_costs(code.parity_check(), all_rows,
                                             faulty, faulty);
  ASSERT_TRUE(costs.has_value());
  EXPECT_GT(costs->second, 0u);
}

TEST(CRSCode, SingleStripFailurePartitionsPerParityRowGroup) {
  // One failed data strip: the w check rows of parity strip 0 alone can
  // recover the w lost packets (their signatures form one solvable
  // bucket), so the partition finds at least one group and no rest.
  const CRSCode code(6, 3, 8);
  std::vector<std::size_t> faulty = code.strip_blocks(2);
  std::sort(faulty.begin(), faulty.end());
  const LogTable table = LogTable::build(code.parity_check(), faulty);
  const Partition part = make_partition(code.parity_check(), table);
  // Whatever the grouping shape, everything must be covered independently
  // or end in a solvable rest; PPM must decode it (checked in round-trip
  // test); here we assert the log table itself: every check row of parity
  // 0 touches only packets of the failed strip.
  for (unsigned i = 0; i < 8; ++i) {
    const LogRow& row = table.rows[i];
    for (const std::size_t c : row.faulty_cols) {
      EXPECT_EQ(c % code.disks(), 2u);
    }
  }
  EXPECT_GE(part.p() + (part.rest_empty() ? 1 : 0), 1u);
}

TEST(CRSCode, ParameterValidation) {
  EXPECT_THROW(CRSCode(0, 2, 8), std::invalid_argument);
  EXPECT_THROW(CRSCode(2, 0, 8), std::invalid_argument);
  EXPECT_THROW(CRSCode(250, 10, 8), std::invalid_argument);
  EXPECT_THROW(CRSCode(4, 2, 5), std::invalid_argument);  // bad sub_w
}

}  // namespace
}  // namespace ppm
