// The hazard analyzer (analyze_hazard/) must prove every plan the library
// actually builds race-free — and reject hand-built hazardous plans with
// the *matching* new Violation kind. It must also report a parallelism
// profile (critical path, level widths, speedup bound) that agrees with
// hand-computed values on a known scenario.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include "test_util.h"

namespace ppm {
namespace {

using planverify::Violation;
using planverify::ViolationKind;

bool has_kind(const std::vector<Violation>& violations, ViolationKind kind) {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.kind == kind; });
}

// Minimal synthetic sub-plan: the analyzer only consumes unknowns,
// survivors and cost, so the matrices can stay empty.
SubPlan make_unit(const gf::Field& f, std::vector<std::size_t> unknowns,
                  std::vector<std::size_t> survivors, std::size_t cost) {
  return SubPlan::from_parts(f, Sequence::kMatrixFirst, std::move(unknowns),
                             std::move(survivors), /*check_rows=*/{},
                             Matrix(f, 0, 0), Matrix(f, 0, 0), cost,
                             /*source_blocks=*/0);
}

XorOp ow(std::size_t target, std::size_t source) {
  return XorOp{/*from_output=*/false, source, target, /*overwrite=*/true};
}

XorOp xor_out(std::size_t target, std::size_t source) {
  return XorOp{/*from_output=*/true, source, target, /*overwrite=*/false};
}

// ---------------------------------------------------------------------------
// Real plans are provably hazard-free with a coherent profile.

TEST(HazardCleanPlans, EveryFamilyWorstCase) {
  std::vector<std::unique_ptr<ErasureCode>> codes;
  codes.push_back(std::make_unique<SDCode>(8, 16, 2, 2, 8));
  codes.push_back(std::make_unique<PMDSCode>(8, 16, 2, 2, 8));
  codes.push_back(std::make_unique<LRCCode>(12, 3, 2, 8));
  codes.push_back(std::make_unique<XorbasLRCCode>(10, 2, 4, 8));
  codes.push_back(std::make_unique<RSCode>(10, 4, 8));
  codes.push_back(std::make_unique<CRSCode>(10, 4, 8));
  codes.push_back(std::make_unique<EvenOddCode>(7));
  codes.push_back(std::make_unique<RDPCode>(7));
  codes.push_back(std::make_unique<StarCode>(7));
  for (const auto& code : codes) {
    ScenarioGenerator gen(1);
    const auto sc = gen.disk_failures(*code, 2).scenario;
    Codec codec(*code);
    const auto plan = codec.plan_for(sc);
    ASSERT_NE(plan, nullptr) << code->name();
    const auto analysis = hazard::analyze_plan(*plan);
    EXPECT_TRUE(analysis.ok())
        << code->name() << ": " << planverify::to_json(analysis.violations);
    EXPECT_EQ(analysis.total_work, plan->cost()) << code->name();
    EXPECT_LE(analysis.critical_path, analysis.total_work) << code->name();
    EXPECT_GE(analysis.speedup_bound(), 1.0) << code->name();
  }
}

TEST(HazardCleanPlans, RealXorSchedulesAreHazardFree) {
  // CRS worst case exercises real planner schedules over the bit matrix.
  CRSCode code(10, 4, 8);
  ScenarioGenerator gen(3);
  const auto sc = gen.disk_failures(code, 4).scenario;
  Codec codec(code);
  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);
  std::size_t schedules = 0;
  const auto check = [&](const SubPlan& sub) {
    const Matrix& applied =
        sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
    const auto sched = plan_xor_schedule(applied);
    if (!sched.has_value()) return;
    ++schedules;
    const auto analysis = hazard::analyze_schedule(*sched, applied);
    EXPECT_TRUE(analysis.ok())
        << planverify::to_json(analysis.violations);
    EXPECT_LE(analysis.critical_path, analysis.total_work);
    EXPECT_GE(analysis.speedup_bound(), 1.0);
  };
  for (const SubPlan& sub : plan->groups()) check(sub);
  if (plan->rest().has_value()) check(*plan->rest());
  EXPECT_GE(schedules, 1u);
}

TEST(HazardCleanPlans, PlannedSlicesAreHazardFree) {
  RSCode code(6, 3, 8);
  const FailureScenario sc({0, 1});
  const Matrix& h = code.parity_check();
  std::vector<std::size_t> rows(h.rows());
  std::iota(rows.begin(), rows.end(), 0);
  const auto plan = SubPlan::make(h, rows, sc.faulty(), sc.faulty(),
                                  Sequence::kMatrixFirst);
  ASSERT_TRUE(plan.has_value());
  for (const std::size_t block : {4096ul, 100ul, 1ul, 7ul}) {
    for (const unsigned threads : {1u, 4u, 64u}) {
      const auto slices = plan_slices(block, 1, threads);
      const auto analysis = hazard::analyze_slices(*plan, slices, block, 1);
      EXPECT_TRUE(analysis.ok())
          << "block=" << block << " threads=" << threads << ": "
          << planverify::to_json(analysis.violations);
    }
  }
}

// ---------------------------------------------------------------------------
// Hand-computed cross-check on a known SD-code scenario: the exact numbers
// `ppm_cli analyze` reports (it prints analyze_plan's profile verbatim).

TEST(HazardProfile, SdWorstCaseMatchesHandComputedBounds) {
  SDCode code(8, 16, 2, 2, 8);
  ScenarioGenerator gen(1);
  const auto sc = gen.sd_worst_case(code, 2, 2, 1).scenario;
  Codec codec(code);
  const auto plan = codec.plan_for(sc);
  ASSERT_NE(plan, nullptr);
  ASSERT_GE(plan->groups().size(), 2u);  // p independent groups
  ASSERT_TRUE(plan->rest().has_value());

  const auto analysis = hazard::analyze_plan(*plan);
  ASSERT_TRUE(analysis.ok());

  // By hand: the groups are mutually unordered roots, rest runs after all
  // of them — so the critical path is the heaviest group chain into rest,
  // the total is the serial sum, and the DAG has exactly two levels of
  // widths {p, 1}.
  std::size_t total = plan->rest()->cost();
  std::size_t heaviest = 0;
  for (const SubPlan& g : plan->groups()) {
    total += g.cost();
    heaviest = std::max(heaviest, g.cost());
  }
  EXPECT_EQ(analysis.total_work, total);
  EXPECT_EQ(analysis.critical_path, heaviest + plan->rest()->cost());
  ASSERT_EQ(analysis.level_width.size(), 2u);
  EXPECT_EQ(analysis.level_width[0], plan->groups().size());
  EXPECT_EQ(analysis.level_width[1], 1u);
  EXPECT_EQ(analysis.max_width, plan->groups().size());
  EXPECT_DOUBLE_EQ(analysis.speedup_bound(),
                   static_cast<double>(total) /
                       static_cast<double>(heaviest + plan->rest()->cost()));
}

TEST(HazardProfile, EmptyGraphHasUnitSpeedup) {
  const auto analysis = hazard::analyze(hazard::HazardGraph{});
  EXPECT_TRUE(analysis.ok());
  EXPECT_EQ(analysis.total_work, 0u);
  EXPECT_EQ(analysis.critical_path, 0u);
  EXPECT_DOUBLE_EQ(analysis.speedup_bound(), 1.0);
}

// ---------------------------------------------------------------------------
// Five deliberately hazardous constructions, each tripping the matching
// new violation kind.

TEST(HazardViolations, DuplicateGroupsTripConcurrentWriteOverlap) {
  const gf::Field& f = gf::field(8);
  // Two "independent" groups writing the same unknown block — the
  // TaskGroup fan-out would race on block 0's bytes.
  auto plan = CachedPlan::assemble(
      {make_unit(f, {0}, {2, 3}, 4), make_unit(f, {0, 1}, {3, 4}, 4)},
      std::nullopt);
  const auto analysis = hazard::analyze_plan(plan);
  EXPECT_FALSE(analysis.ok());
  EXPECT_TRUE(has_kind(analysis.violations,
                       ViolationKind::kConcurrentWriteOverlap));
  EXPECT_FALSE(has_kind(analysis.violations,
                        ViolationKind::kDependencyCycle));
}

TEST(HazardViolations, GroupReadingPeerOutputTripsReadWriteOverlap) {
  const gf::Field& f = gf::field(8);
  // Group 1 reads block 0, which group 0 concurrently writes. Disjoint
  // writes, so only the read/write hazard fires.
  auto plan = CachedPlan::assemble(
      {make_unit(f, {0}, {2, 3}, 4), make_unit(f, {1}, {0, 3}, 4)},
      std::nullopt);
  const auto analysis = hazard::analyze_plan(plan);
  EXPECT_FALSE(analysis.ok());
  EXPECT_TRUE(has_kind(analysis.violations,
                       ViolationKind::kConcurrentReadWriteOverlap));
  EXPECT_FALSE(has_kind(analysis.violations,
                        ViolationKind::kConcurrentWriteOverlap));
}

TEST(HazardViolations, MutualFromOutputReadsTripDependencyCycle) {
  const gf::Field& f = gf::field(8);
  const Matrix g(f, 2, 2);  // shape only; the schedule is hand-built
  XorSchedule sched;
  sched.ops = {ow(0, 0), ow(1, 1), xor_out(0, 1), xor_out(1, 0)};
  const auto analysis = hazard::analyze_schedule(sched, g);
  EXPECT_FALSE(analysis.ok());
  EXPECT_TRUE(has_kind(analysis.violations, ViolationKind::kDependencyCycle));
  // No schedule exists, so the only sound critical path is the serial sum.
  EXPECT_EQ(analysis.critical_path, analysis.total_work);
}

TEST(HazardViolations, BadSliceGeometryTripsSliceMisalignment) {
  const gf::Field& f = gf::field(8);
  const SubPlan plan = make_unit(f, {0}, {1, 2}, 3);
  // Unaligned boundary (6 is not a multiple of symbol size 4).
  {
    const std::vector<SliceRange> slices = {{0, 6}, {6, 10}};
    const auto a = hazard::analyze_slices(plan, slices, 16, 4);
    EXPECT_TRUE(has_kind(a.violations, ViolationKind::kSliceMisalignment));
  }
  // Gap between slices: [0,8) then [12,16) leaves [8,12) undecoded.
  {
    const std::vector<SliceRange> slices = {{0, 8}, {12, 4}};
    const auto a = hazard::analyze_slices(plan, slices, 16, 4);
    EXPECT_TRUE(has_kind(a.violations, ViolationKind::kSliceMisalignment));
  }
  // Overlapping slices additionally race on the shared bytes.
  {
    const std::vector<SliceRange> slices = {{0, 12}, {8, 8}};
    const auto a = hazard::analyze_slices(plan, slices, 16, 4);
    EXPECT_TRUE(has_kind(a.violations, ViolationKind::kSliceMisalignment));
    EXPECT_TRUE(
        has_kind(a.violations, ViolationKind::kConcurrentWriteOverlap));
  }
  // Short coverage: slices must tile the whole region.
  {
    const std::vector<SliceRange> slices = {{0, 8}};
    const auto a = hazard::analyze_slices(plan, slices, 16, 4);
    EXPECT_TRUE(has_kind(a.violations, ViolationKind::kSliceMisalignment));
  }
}

TEST(HazardViolations, PartialSourceReadTripsUnorderedFromOutputUse) {
  const gf::Field& f = gf::field(8);
  // t0 = c0 ^ t1, t1 = c1: serially legal (t1 is final before op 2 runs)
  // but t0's unit starts at op 0, before t1 is written — a unit-concurrent
  // executor could read a partial t1.
  Matrix g(f, 2, 2);
  g(0, 0) = 1;
  g(0, 1) = 1;
  g(1, 1) = 1;
  XorSchedule sched;
  sched.ops = {ow(0, 0), ow(1, 1), xor_out(0, 1)};
  sched.naive_ops = 3;  // u(G): one op per nonzero of g
  ASSERT_TRUE(planverify::verify_xor_schedule(g, sched).ok())
      << "trigger must stay serially sound to isolate the new kind";
  const auto analysis = hazard::analyze_schedule(sched, g);
  EXPECT_FALSE(analysis.ok());
  EXPECT_TRUE(
      has_kind(analysis.violations, ViolationKind::kUnorderedFromOutputUse));
  EXPECT_FALSE(has_kind(analysis.violations, ViolationKind::kDependencyCycle));
}

TEST(HazardViolations, NeverWrittenSourceTripsUnorderedFromOutputUse) {
  const gf::Field& f = gf::field(8);
  const Matrix g(f, 2, 2);
  XorSchedule sched;
  sched.ops = {ow(0, 0), xor_out(0, 1)};  // target 1 never written
  const auto analysis = hazard::analyze_schedule(sched, g);
  EXPECT_TRUE(
      has_kind(analysis.violations, ViolationKind::kUnorderedFromOutputUse));
}

}  // namespace
}  // namespace ppm
