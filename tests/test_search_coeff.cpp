// The coefficient-certification oracle (search_coeff/): scenario
// enumeration and census identities, exhaustive certification of the
// paper tuple, refutation, deficiency characterization, certificate
// round-trip and the cert store's zero-trust tamper handling.
#include <gtest/gtest.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "codes/sd_code.h"
#include "common/crc32.h"
#include "search_coeff/cert_store.h"
#include "search_coeff/certify.h"
#include "search_coeff/scenario_enum.h"
#include "search_coeff/search.h"

namespace ppm::coeffsearch {
namespace {

constexpr Geometry kPaper{6, 4, 2, 2, 8};
const std::vector<gf::Element> kPaperTuple{1, 42, 26, 61};

// Brute-force count of maximal scenarios: every choice of m disks and
// s sector cells on the survivors. Ground truth for census().
std::uint64_t brute_force_maximal(const Geometry& g) {
  std::uint64_t count = 0;
  std::vector<std::size_t> disks;
  const auto choose_sectors = [&](auto&& self, std::size_t next,
                                  std::size_t remaining) -> void {
    if (remaining == 0) {
      ++count;
      return;
    }
    for (std::size_t cell = next; cell < g.n * g.r; ++cell) {
      const std::size_t col = cell % g.n;
      if (std::find(disks.begin(), disks.end(), col) != disks.end()) {
        continue;
      }
      self(self, cell + 1, remaining - 1);
    }
  };
  const auto choose_disks = [&](auto&& self, std::size_t next,
                                std::size_t remaining) -> void {
    if (remaining == 0) {
      choose_sectors(choose_sectors, 0, g.s);
      return;
    }
    for (std::size_t d = next; d + remaining <= g.n; ++d) {
      disks.push_back(d);
      self(self, d + 1, remaining - 1);
      disks.pop_back();
    }
  };
  choose_disks(choose_disks, 0, g.m);
  return count;
}

TEST(SearchCoeff, CensusMatchesBruteForce) {
  for (const Geometry& g :
       {Geometry{5, 3, 2, 2, 8}, Geometry{4, 4, 1, 3, 8},
        Geometry{6, 2, 3, 1, 8}, Geometry{3, 5, 1, 2, 8}}) {
    const Census c = census(g);
    EXPECT_EQ(c.maximal, brute_force_maximal(g)) << g.n << "," << g.r;
    // Canonical classes biject onto "patterns using column 0"; the rest
    // are exactly the patterns of the same geometry over n-1 columns.
    Geometry smaller = g;
    smaller.n = g.n - 1;
    const std::uint64_t tail =
        smaller.n > smaller.m &&
                smaller.s <= (smaller.n - smaller.m) * smaller.r
            ? brute_force_maximal(smaller)
            : 0;
    EXPECT_EQ(c.canonical, c.maximal - tail) << g.n << "," << g.r;
  }
}

TEST(SearchCoeff, EnumerationReproducesCensusExactly) {
  const Geometry g{5, 3, 2, 2, 8};
  const Census c = census(g);
  std::uint64_t classes = 0;
  std::uint64_t members = 0;
  const std::uint64_t visited = enumerate_classes(
      g, EnumerateOptions{}, [&](const ScenarioClass& sc) {
        ++classes;
        members += sc.members;
        // Canonical form: minimum involved column 0; orbit size is
        // n minus the maximum involved column.
        std::size_t min_col = g.n;
        std::size_t max_col = 0;
        for (const std::size_t d : sc.disks) {
          min_col = std::min(min_col, d);
          max_col = std::max(max_col, d);
        }
        for (const std::size_t cell : sc.sectors) {
          min_col = std::min(min_col, cell % g.n);
          max_col = std::max(max_col, cell % g.n);
        }
        EXPECT_EQ(min_col, 0u);
        EXPECT_EQ(sc.members, g.n - max_col);
        EXPECT_EQ(sc.disks.size(), g.m);
        EXPECT_EQ(sc.sectors.size(), g.s);
        EXPECT_EQ(sc.blocks(g).size(), g.m * g.r + g.s);
        return true;
      });
  EXPECT_EQ(visited, c.canonical);
  EXPECT_EQ(classes, c.canonical);
  EXPECT_EQ(members, c.maximal);
}

TEST(SearchCoeff, RankIsTranslationInvariant) {
  // The symmetry the enumerator quotients by: shifting a whole pattern
  // right must preserve the rank of the restricted parity-check matrix.
  const gf::Field& f = gf::field(kPaper.w);
  const Matrix h = SDCode::build_parity_check(f, kPaper.n, kPaper.r,
                                              kPaper.m, kPaper.s,
                                              kPaperTuple);
  std::size_t probed = 0;
  enumerate_classes(kPaper, EnumerateOptions{},
                    [&](const ScenarioClass& sc) {
                      const auto blocks = sc.blocks(kPaper);
                      const std::size_t base =
                          h.select_columns(blocks).rank();
                      for (std::size_t t = 1; t < sc.members; ++t) {
                        std::vector<std::size_t> shifted;
                        for (const std::size_t b : blocks) {
                          shifted.push_back(b + t);
                        }
                        EXPECT_EQ(h.select_columns(shifted).rank(), base);
                      }
                      return ++probed < 40;  // a deterministic prefix
                    });
  EXPECT_EQ(probed, 40u);
}

TEST(SearchCoeff, PaperTupleCertifiesPerfect) {
  CertifyOptions opts;
  opts.plan_budget = 2000;  // above the census: every class plan-proven
  const CertifyResult res = certify_tuple(kPaper, kPaperTuple, opts);
  ASSERT_TRUE(res.certified) << res.reason;
  const Certificate& cert = res.cert;
  EXPECT_TRUE(cert.exact);
  EXPECT_EQ(cert.maximal, 1800u);
  EXPECT_EQ(cert.canonical, 1140u);
  EXPECT_EQ(cert.rank_checked, cert.canonical);
  EXPECT_EQ(cert.plans_proven, cert.canonical);
  EXPECT_EQ(cert.deficient_classes, 0u);
  EXPECT_EQ(cert.deficient_members, 0u);
  EXPECT_GT(cert.worst_case.critical_path, 0u);
  EXPECT_LE(cert.worst_case.critical_path, cert.worst_case.work);
  // Stratum aggregates must add up to the universe totals.
  std::uint64_t classes = 0;
  std::uint64_t members = 0;
  std::uint64_t plans = 0;
  for (const StratumReport& st : cert.strata) {
    classes += st.classes;
    members += st.members;
    plans += st.plans_proven;
    EXPECT_EQ(st.deficient_classes, 0u);
  }
  EXPECT_EQ(classes, cert.canonical);
  EXPECT_EQ(members, cert.maximal);
  EXPECT_EQ(plans, cert.plans_proven);
}

TEST(SearchCoeff, BadTupleRefutedWithWitness) {
  const CertifyResult res =
      certify_tuple(kPaper, std::vector<gf::Element>{1, 1, 1, 1});
  EXPECT_FALSE(res.certified);
  EXPECT_FALSE(res.reason.empty());
  // The witness is a concrete failing scenario: its blocks must be
  // rank-deficient under the tuple's parity-check matrix.
  ASSERT_FALSE(res.first_failure.empty());
  const gf::Field& f = gf::field(kPaper.w);
  const Matrix h = SDCode::build_parity_check(
      f, kPaper.n, kPaper.r, kPaper.m, kPaper.s,
      std::vector<gf::Element>{1, 1, 1, 1});
  EXPECT_LT(h.select_columns(res.first_failure).rank(),
            res.first_failure.size());
}

TEST(SearchCoeff, DeficiencyIsCharacterizedNotHidden) {
  // The historical consecutive-powers tuple for SD(6,6,2,2) is provably
  // deficient — the sampled validator this PR replaces never noticed.
  const Geometry g{6, 6, 2, 2, 8};
  const std::vector<gf::Element> legacy{1, 2, 4, 8};
  EXPECT_FALSE(certify_tuple(g, legacy).certified);

  CertifyOptions allow;
  allow.allow_deficient = true;
  const CertifyResult res = certify_tuple(g, legacy, allow);
  ASSERT_TRUE(res.certified) << res.reason;
  EXPECT_GT(res.cert.deficient_classes, 0u);
  EXPECT_GE(res.cert.deficient_members, res.cert.deficient_classes);
  EXPECT_EQ(res.cert.rank_checked, res.cert.canonical);
  std::uint64_t stratum_deficient = 0;
  for (const StratumReport& st : res.cert.strata) {
    stratum_deficient += st.deficient_classes;
  }
  EXPECT_EQ(stratum_deficient, res.cert.deficient_classes);
}

TEST(SearchCoeff, StratifiedSweepIsDeterministic) {
  // Force the stratified fallback and vary the thread count: the
  // certificate must be bit-for-bit identical (the zero-trust store
  // depends on this).
  const Geometry g{6, 8, 2, 2, 8};
  CertifyOptions a;
  a.exact_class_limit = 100;
  a.stratified_classes = 600;
  a.plan_budget = 16;
  a.threads = 1;
  CertifyOptions b = a;
  b.threads = 4;
  const std::vector<gf::Element> tuple{1, 31, 248, 202};
  const CertifyResult ra = certify_tuple(g, tuple, a);
  const CertifyResult rb = certify_tuple(g, tuple, b);
  ASSERT_TRUE(ra.certified) << ra.reason;
  ASSERT_TRUE(rb.certified) << rb.reason;
  EXPECT_FALSE(ra.cert.exact);
  EXPECT_EQ(ra.cert, rb.cert);
  EXPECT_EQ(ra.cert.to_json(), rb.cert.to_json());
}

TEST(SearchCoeff, CertificateJsonRoundTrips) {
  const CertifyResult res = certify_tuple(kPaper, kPaperTuple);
  ASSERT_TRUE(res.certified);
  Certificate parsed;
  std::string why;
  ASSERT_TRUE(parse_certificate(res.cert.to_json(), &parsed, &why)) << why;
  EXPECT_EQ(parsed, res.cert);
}

TEST(SearchCoeff, ParserRejectsVersionSkew) {
  const CertifyResult res = certify_tuple(kPaper, kPaperTuple);
  ASSERT_TRUE(res.certified);
  std::string json = res.cert.to_json();
  const std::string from = "\"format\":1";
  json.replace(json.find(from), from.size(), "\"format\":999");
  Certificate parsed;
  std::string why;
  EXPECT_FALSE(parse_certificate(json, &parsed, &why));
  EXPECT_FALSE(why.empty());
}

TEST(SearchCoeff, DegenerateGeometriesThrow) {
  EXPECT_THROW(validate_geometry(Geometry{4, 4, 0, 1, 8}),
               std::invalid_argument);
  EXPECT_THROW(validate_geometry(Geometry{4, 4, 4, 1, 8}),
               std::invalid_argument);
  EXPECT_THROW(validate_geometry(Geometry{4, 2, 3, 3, 8}),
               std::invalid_argument);
  EXPECT_THROW(validate_geometry(Geometry{24, 16, 2, 2, 8}),
               std::invalid_argument);  // field too small for n*r
  EXPECT_THROW(certify_tuple(Geometry{4, 4, 0, 1, 8},
                             std::vector<gf::Element>{1}),
               std::invalid_argument);
}

TEST(SearchCoeff, SearchBeatsOrMatchesPaperTuple) {
  const CertifyResult paper = certify_tuple(kPaper, kPaperTuple);
  ASSERT_TRUE(paper.certified);
  SearchOptions opts;
  opts.candidate_budget = 64;
  opts.certify_budget = 2;
  const SearchResult res = search_best(kPaper, opts);
  ASSERT_TRUE(res.found) << res.reason;
  EXPECT_EQ(res.best.cert.deficient_classes, 0u);
  EXPECT_LE(res.best.cert.worst_case.critical_path,
            paper.cert.worst_case.critical_path);
  EXPECT_FALSE(res.pareto.empty());
  // Determinism: the same options reproduce the same winner.
  const SearchResult again = search_best(kPaper, opts);
  ASSERT_TRUE(again.found);
  EXPECT_EQ(again.best.tuple, res.best.tuple);
  EXPECT_EQ(again.best.cert, res.best.cert);
}

class CertStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           "ppm_test_cert_store";
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(CertStoreTest, PutLoadRoundTrip) {
  CertStore store(dir_);
  const CertifyResult res = certify_tuple(kPaper, kPaperTuple);
  ASSERT_TRUE(res.certified);
  ASSERT_TRUE(store.put(res.cert));
  Certificate out;
  CertifyOptions require;  // defaults match the recorded options
  EXPECT_EQ(store.load(kPaper, require, &out),
            CertStore::LoadResult::kLoaded);
  EXPECT_EQ(out, res.cert);
  EXPECT_EQ(store.load(Geometry{6, 6, 2, 2, 8}, require, &out),
            CertStore::LoadResult::kMissing);
}

TEST_F(CertStoreTest, WeakerRecordThanRequiredIsRejected) {
  CertStore store(dir_);
  CertifyOptions weak;
  weak.plan_budget = 8;
  const CertifyResult res = certify_tuple(kPaper, kPaperTuple, weak);
  ASSERT_TRUE(res.certified);
  ASSERT_TRUE(store.put(res.cert));
  Certificate out;
  CertifyOptions require;
  require.plan_budget = 384;
  std::string why;
  EXPECT_EQ(store.load(kPaper, require, &out, &why),
            CertStore::LoadResult::kRejected);
  EXPECT_NE(why.find("weaker"), std::string::npos) << why;
}

TEST_F(CertStoreTest, CrcResealedTamperIsQuarantinedAndRecertified) {
  CertStore store(dir_);
  const CertifyResult res = certify_tuple(kPaper, kPaperTuple);
  ASSERT_TRUE(res.certified);
  ASSERT_TRUE(store.put(res.cert));
  const std::filesystem::path path =
      dir_ / CertStore::record_filename(kPaper);

  // Tamper with a *claim* — flip the recorded deficiency count — and
  // RE-SEAL with a correct CRC, so only the semantic re-proof can
  // catch it. This models an adversarial (not accidental) edit; note a
  // CRC-level flip without resealing is already caught by unseal().
  std::string payload;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string raw = buf.str();
    payload = raw.substr(raw.find('\n') + 1);
  }
  const std::string from = "\"deficient_classes\":0";
  const std::size_t at = payload.find(from);
  ASSERT_NE(at, std::string::npos);
  payload.replace(at, from.size(), "\"deficient_classes\":1");
  {
    char header[64];
    std::snprintf(header, sizeof header, "PPMCERT %" PRIu64 " %08" PRIx64
                  " %zu\n",
                  kCertFormatVersion,
                  static_cast<std::uint64_t>(
                      crc32(payload.data(), payload.size())),
                  payload.size());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << header << payload;
  }

  // The seal verifies, the parse succeeds — but the zero-trust re-proof
  // disagrees with the record, so the load quarantines it.
  Certificate out;
  CertifyOptions require;
  std::string why;
  EXPECT_EQ(store.load(kPaper, require, &out, &why),
            CertStore::LoadResult::kRejected);
  EXPECT_NE(why.find("disagrees"), std::string::npos) << why;
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(
      path.string() + ".quarantined"));

  // Fresh re-certification repairs the store; the quarantined copy is
  // swept by gc.
  ASSERT_TRUE(store.put(res.cert));
  EXPECT_EQ(store.load(kPaper, require, &out),
            CertStore::LoadResult::kLoaded);
  EXPECT_EQ(out, res.cert);
  const auto check = store.check();
  EXPECT_EQ(check.checked, 1u);
  EXPECT_EQ(check.verified, 1u);
  const auto gc = store.gc();
  EXPECT_EQ(gc.removed_quarantined, 1u);
  EXPECT_FALSE(
      std::filesystem::exists(path.string() + ".quarantined"));
}

TEST_F(CertStoreTest, GcRetainsTheNewestQuarantinedFiles) {
  // Same retention contract as the plan store: gc(keep) ages out the
  // oldest quarantined certificates and keeps the `keep` newest as the
  // forensic window.
  CertStore store(dir_);
  const auto now = std::filesystem::file_time_type::clock::now();
  for (int i = 0; i < 3; ++i) {
    const std::filesystem::path p =
        dir_ / ("rot" + std::to_string(i) + ".cert.quarantined");
    std::ofstream(p) << "junk" << i;
    std::filesystem::last_write_time(p, now - std::chrono::hours(10 - i));
  }

  EXPECT_EQ(store.gc(/*keep_quarantined=*/1).removed_quarantined, 2u);
  EXPECT_FALSE(
      std::filesystem::exists(dir_ / "rot0.cert.quarantined"));
  EXPECT_FALSE(
      std::filesystem::exists(dir_ / "rot1.cert.quarantined"));
  EXPECT_TRUE(
      std::filesystem::exists(dir_ / "rot2.cert.quarantined"));
  EXPECT_EQ(store.gc().removed_quarantined, 1u);
}

TEST_F(CertStoreTest, PutFailureLeavesNoTmpBehind) {
  // A directory planted at the record path blocks the atomic rename:
  // put() must report false and must not leak the staged .tmp file.
  CertStore store(dir_);
  const CertifyResult res = certify_tuple(kPaper, kPaperTuple);
  ASSERT_TRUE(res.certified);
  const std::filesystem::path record =
      dir_ / CertStore::record_filename(kPaper);
  std::filesystem::create_directories(record);

  EXPECT_FALSE(store.put(res.cert));
  EXPECT_TRUE(std::filesystem::is_directory(record));  // untouched
  EXPECT_FALSE(std::filesystem::exists(record.string() + ".tmp"));
}

}  // namespace
}  // namespace ppm::coeffsearch
