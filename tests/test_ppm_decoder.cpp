// PPM decoder: equivalence with the traditional decoder, parallel phases,
// sequence policies, thread handling and the modeled-parallel clock.
#include <gtest/gtest.h>

#include <tuple>

#include "codes/lrc_code.h"
#include "codes/pmds_code.h"
#include "codes/sd_code.h"
#include "decode/cost_model.h"
#include "decode/ppm_decoder.h"
#include "test_util.h"
#include "workload/scenario_gen.h"
#include "workload/stripe.h"

namespace ppm {
namespace {

TEST(PpmDecoder, Fig3ExampleRecoversAndCostsC4) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 1024);
  const auto snap = test::fill_and_encode(code, stripe, 60);
  const FailureScenario sc({2, 6, 10, 13, 14});
  stripe.erase(sc);
  PpmOptions opts;
  opts.rest_policy = SequencePolicy::kNormal;  // Algorithm 1: C4
  const PpmDecoder dec(code, opts);
  const auto res = dec.decode(sc, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(res->p, 3u);
  EXPECT_EQ(res->stats.mult_xors, 29u);  // C4 from the paper
  EXPECT_EQ(res->task_seconds.size(), 3u);
}

TEST(PpmDecoder, AutoRestPolicyRealizesMinC3C4) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 61);
  ScenarioGenerator gen(62);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  const auto costs = analyze_costs(code, g.scenario);
  ASSERT_TRUE(costs.has_value());
  stripe.erase(g.scenario);
  const PpmDecoder dec(code);
  const auto res =
      dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  EXPECT_EQ(res->stats.mult_xors, costs->ppm_best());
}

class PpmEquivalence
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(PpmEquivalence, MatchesTraditionalByteForByte) {
  const auto [w, threads] = GetParam();
  const std::size_t n = 8;
  const std::size_t r = 8;
  const SDCode code(n, r, 2, 2, w);
  Stripe stripe(code, 64 * code.field().symbol_bytes());
  const auto snap = test::fill_and_encode(code, stripe, 63 + w + threads);
  ScenarioGenerator gen(64 + w * threads);
  for (int trial = 0; trial < 5; ++trial) {
    const auto g = gen.sd_worst_case(code, 2, 2, 1);
    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(g.scenario);
    PpmOptions opts;
    opts.threads = threads;
    const PpmDecoder dec(code, opts);
    const auto res =
        dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(stripe.equals(snap)) << "trial " << trial;
    EXPECT_EQ(res->threads_used, std::min<unsigned>(threads, res->p));
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndThreads, PpmEquivalence,
    ::testing::Combine(::testing::Values(8u, 16u, 32u),
                       ::testing::Values(1u, 2u, 4u)),
    [](const auto& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PpmDecoder, SharedPoolExecution) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 65);
  ScenarioGenerator gen(66);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  PpmOptions opts;
  opts.threads = 4;
  opts.pool = &ThreadPool::shared();
  const PpmDecoder dec(code, opts);
  const auto res =
      dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(PpmDecoder, EncodeMatchesTraditionalEncode) {
  for (unsigned w : {8u, 16u}) {
    const SDCode code(6, 4, 2, 2, w);
    Stripe a(code, 64 * code.field().symbol_bytes());
    Stripe b(code, 64 * code.field().symbol_bytes());
    Rng rng(67);
    a.fill_data(rng);
    std::memcpy(b.block(0), a.block(0), a.stripe_bytes());
    const TraditionalDecoder trad(code);
    ASSERT_TRUE(trad.encode(a.block_ptrs(), a.block_bytes()));
    const PpmDecoder ppm_dec(code);
    const auto res = ppm_dec.encode(b.block_ptrs(), b.block_bytes());
    ASSERT_TRUE(res.has_value());
    EXPECT_TRUE(b.equals(a.snapshot()));
    // SD encoding parallelizes by stripe row.
    EXPECT_GE(res->p, 1u);
  }
}

TEST(PpmDecoder, UndecodableReturnsNulloptAndLeavesNoPartialWrites) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 68);
  stripe.erase(FailureScenario({0, 1, 2}));
  const auto before = stripe.snapshot();
  const PpmDecoder dec(code);
  EXPECT_FALSE(dec.decode(FailureScenario({0, 1, 2}), stripe.block_ptrs(),
                          stripe.block_bytes())
                   .has_value());
  // Planning fails before any region op, so the stripe is untouched.
  EXPECT_TRUE(stripe.equals(before));
}

TEST(PpmDecoder, NoPartitionFallsBackToRestOnly) {
  // LRC failure pattern with everything in one local group: no independent
  // groups; PPM must still decode (p may be 0) and match traditional.
  const LRCCode code(8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 69);
  // Two data failures in group 0 ({0..3}): local row 0 has t=2 with only
  // one matching row; globals have t=2 as well but different... exercise it.
  const FailureScenario sc({0, 1});
  stripe.erase(sc);
  const PpmDecoder dec(code);
  const auto res = dec.decode(sc, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(PpmDecoder, PmdsDecodesIdentically) {
  const PMDSCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 70);
  ScenarioGenerator gen(71);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  const PpmDecoder dec(code);
  const auto res =
      dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(stripe.equals(snap));
  EXPECT_EQ(res->p, 7u);  // r - z, same as SD
}

TEST(PpmDecoder, ModeledSecondsRespectsLaneCount) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 4096);
  test::fill_and_encode(code, stripe, 72);
  ScenarioGenerator gen(73);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  PpmOptions opts;
  opts.threads = 4;
  const PpmDecoder dec(code, opts);
  const auto res =
      dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  ASSERT_EQ(res->task_seconds.size(), 7u);
  // More lanes -> modeled time can only shrink (monotone makespan).
  const double t1 = res->modeled_seconds(1);
  const double t2 = res->modeled_seconds(2);
  const double t4 = res->modeled_seconds(4);
  const double t8 = res->modeled_seconds(8);
  EXPECT_GE(t1, t2);
  EXPECT_GE(t2, t4);
  EXPECT_GE(t4, t8);
  // One lane degenerates to the serial sum.
  double sum = res->plan_seconds + res->rest_seconds;
  for (const double t : res->task_seconds) sum += t;
  EXPECT_NEAR(t1, sum, 1e-9);
}

TEST(PpmDecoder, StatsIndependentOfThreadCount) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 74);
  ScenarioGenerator gen(75);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  std::size_t ops1 = 0;
  for (const unsigned t : {1u, 2u, 4u}) {
    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(g.scenario);
    PpmOptions opts;
    opts.threads = t;
    const PpmDecoder dec(code, opts);
    const auto res =
        dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
    ASSERT_TRUE(res.has_value());
    if (t == 1) {
      ops1 = res->stats.mult_xors;
    } else {
      EXPECT_EQ(res->stats.mult_xors, ops1);
    }
  }
}


TEST(PpmDecoder, OverheadModelChargesThreadSpawn) {
  const SDCode code(8, 8, 2, 2, 8);
  Stripe stripe(code, 2048);
  test::fill_and_encode(code, stripe, 76);
  ScenarioGenerator gen(77);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  stripe.erase(g.scenario);
  PpmOptions opts;
  opts.threads = 4;
  const PpmDecoder dec(code, opts);
  const auto res =
      dec.decode(g.scenario, stripe.block_ptrs(), stripe.block_bytes());
  ASSERT_TRUE(res.has_value());
  ASSERT_GT(res->task_seconds.size(), 1u);
  // With a parallel phase, the overhead-aware model charges exactly
  // lanes * spawn cost on top of the pure makespan model.
  const double spawn = ThreadPool::thread_spawn_seconds();
  EXPECT_NEAR(res->modeled_seconds_with_overhead(4),
              res->modeled_seconds(4) + 4 * spawn, 1e-12);
  // A single lane spawns nothing.
  EXPECT_DOUBLE_EQ(res->modeled_seconds_with_overhead(1),
                   res->modeled_seconds(1));
}

TEST(PpmDecoder, OverheadModelFreeWithoutParallelPhase) {
  // One faulty block -> one group -> no threads to charge.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  Stripe stripe(code, 512);
  test::fill_and_encode(code, stripe, 78);
  const FailureScenario sc({5});
  stripe.erase(sc);
  PpmOptions opts;
  opts.threads = 4;
  const PpmDecoder dec(code, opts);
  const auto res = dec.decode(sc, stripe.block_ptrs(), 512);
  ASSERT_TRUE(res.has_value());
  ASSERT_EQ(res->task_seconds.size(), 1u);
  EXPECT_DOUBLE_EQ(res->modeled_seconds_with_overhead(4),
                   res->modeled_seconds(4));
}

}  // namespace
}  // namespace ppm
