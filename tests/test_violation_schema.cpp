// Golden pin of the Violation JSON schema. `ppm_cli verify`/`analyze`
// emit this JSON for operator tooling, so the field names, optional-field
// omission rules, and every kind string are a public contract: renaming a
// kind or field silently breaks downstream parsers. Any change here must
// be deliberate and documented in docs/STATIC_ANALYSIS.md.
#include <gtest/gtest.h>

#include <vector>

#include "verify_plan/violation.h"

namespace ppm::planverify {
namespace {

// Every ViolationKind in declaration order, paired with its wire name.
// Append-only: adding a kind extends this table; renaming or reordering
// existing entries breaks saved reports and must fail this test.
const std::vector<std::pair<ViolationKind, const char*>> kGoldenKinds = {
    {ViolationKind::kDuplicateRecovery, "duplicate_recovery"},
    {ViolationKind::kMissingRecovery, "missing_recovery"},
    {ViolationKind::kUnexpectedRecovery, "unexpected_recovery"},
    {ViolationKind::kShapeMismatch, "shape_mismatch"},
    {ViolationKind::kUnknownOutOfBounds, "unknown_out_of_bounds"},
    {ViolationKind::kSurvivorOutOfBounds, "survivor_out_of_bounds"},
    {ViolationKind::kRowOutOfBounds, "row_out_of_bounds"},
    {ViolationKind::kDuplicateIndex, "duplicate_index"},
    {ViolationKind::kSourceAliasesTarget, "source_aliases_target"},
    {ViolationKind::kForbiddenSource, "forbidden_source"},
    {ViolationKind::kUncoveredColumn, "uncovered_column"},
    {ViolationKind::kSingularF, "singular_f"},
    {ViolationKind::kInverseMismatch, "inverse_mismatch"},
    {ViolationKind::kMatrixMismatch, "matrix_mismatch"},
    {ViolationKind::kCostMismatch, "cost_mismatch"},
    {ViolationKind::kSourceBlocksMismatch, "source_blocks_mismatch"},
    {ViolationKind::kXorNotBinary, "xor_not_binary"},
    {ViolationKind::kXorIndexOutOfBounds, "xor_index_out_of_bounds"},
    {ViolationKind::kXorMissingOverwrite, "xor_missing_overwrite"},
    {ViolationKind::kXorOverwriteAfterWrite, "xor_overwrite_after_write"},
    {ViolationKind::kXorSelfReference, "xor_self_reference"},
    {ViolationKind::kXorReadBeforeFinal, "xor_read_before_final"},
    {ViolationKind::kXorTargetNeverWritten, "xor_target_never_written"},
    {ViolationKind::kXorWrongResult, "xor_wrong_result"},
    {ViolationKind::kXorCostMismatch, "xor_cost_mismatch"},
    {ViolationKind::kConcurrentWriteOverlap, "concurrent_write_overlap"},
    {ViolationKind::kConcurrentReadWriteOverlap,
     "concurrent_read_write_overlap"},
    {ViolationKind::kDependencyCycle, "dependency_cycle"},
    {ViolationKind::kSliceMisalignment, "slice_misalignment"},
    {ViolationKind::kUnorderedFromOutputUse, "unordered_from_output_use"},
    {ViolationKind::kXorTargetSpanFragmented, "xor_target_span_fragmented"},
};

TEST(ViolationSchema, EveryKindStringIsPinned) {
  ASSERT_EQ(kGoldenKinds.size(), 31u);
  for (const auto& [kind, name] : kGoldenKinds) {
    EXPECT_STREQ(kind_name(kind), name);
  }
}

TEST(ViolationSchema, KindEnumIsDenseAndCovered) {
  // The golden table must cover the enum exactly: kind values are the
  // dense range [0, size) with no holes a new kind could hide in.
  for (std::size_t i = 0; i < kGoldenKinds.size(); ++i) {
    EXPECT_EQ(static_cast<std::size_t>(kGoldenKinds[i].first), i);
  }
}

TEST(ViolationSchema, JsonFieldNamesAndOmissionRules) {
  // Full location: all four fields, in this exact order.
  const Violation full{ViolationKind::kXorSelfReference, 2, 7, "op reads"};
  // Plan-level: sub_plan and op omitted entirely (never null, never -1).
  const Violation bare{ViolationKind::kMissingRecovery, kNoIndex, kNoIndex,
                       "block 3"};
  // Unit-level hazard: sub_plan carries the unit index, op omitted.
  const Violation unit{ViolationKind::kConcurrentWriteOverlap, 1, kNoIndex,
                       "group 0 and group 1"};
  const std::vector<Violation> all = {full, bare, unit};
  EXPECT_EQ(to_json(all),
            "[{\"kind\":\"xor_self_reference\",\"sub_plan\":2,\"op\":7,"
            "\"message\":\"op reads\"},"
            "{\"kind\":\"missing_recovery\",\"message\":\"block 3\"},"
            "{\"kind\":\"concurrent_write_overlap\",\"sub_plan\":1,"
            "\"message\":\"group 0 and group 1\"}]");
}

TEST(ViolationSchema, JsonEscapesControlAndQuoteCharacters) {
  const Violation v{ViolationKind::kCostMismatch, kNoIndex, kNoIndex,
                    "say \"42\" \\ tab\there\nnul\x01"};
  EXPECT_EQ(to_json({&v, 1}),
            "[{\"kind\":\"cost_mismatch\",\"message\":"
            "\"say \\\"42\\\" \\\\ tab\\there\\nnul\\u0001\"}]");
}

TEST(ViolationSchema, EmptyListIsEmptyArray) {
  EXPECT_EQ(to_json({}), "[]");
}

}  // namespace
}  // namespace ppm::planverify
