// FailureScenario semantics.
#include <gtest/gtest.h>

#include "codes/sd_code.h"
#include "decode/scenario.h"

namespace ppm {
namespace {

TEST(FailureScenario, SortsAndDeduplicates) {
  const FailureScenario sc({7, 2, 7, 4, 2});
  EXPECT_EQ(std::vector<std::size_t>(sc.faulty().begin(), sc.faulty().end()),
            (std::vector<std::size_t>{2, 4, 7}));
  EXPECT_EQ(sc.count(), 3u);
}

TEST(FailureScenario, ContainsAndIndexOf) {
  const FailureScenario sc({2, 6, 10, 13, 14});
  EXPECT_TRUE(sc.contains(10));
  EXPECT_FALSE(sc.contains(11));
  EXPECT_EQ(sc.index_of(2), 0u);
  EXPECT_EQ(sc.index_of(13), 3u);
  EXPECT_EQ(sc.index_of(14), 4u);
}

TEST(FailureScenario, EmptyScenario) {
  const FailureScenario sc;
  EXPECT_TRUE(sc.empty());
  EXPECT_EQ(sc.count(), 0u);
  EXPECT_FALSE(sc.contains(0));
}

TEST(FailureScenario, EncodingOfListsAllParityBlocks) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const auto sc = FailureScenario::encoding_of(code);
  EXPECT_EQ(std::vector<std::size_t>(sc.faulty().begin(), sc.faulty().end()),
            (std::vector<std::size_t>{3, 7, 11, 14, 15}));
}

TEST(FailureScenario, Equality) {
  EXPECT_EQ(FailureScenario({1, 2}), FailureScenario({2, 1, 1}));
  EXPECT_NE(FailureScenario({1, 2}), FailureScenario({1, 3}));
}

}  // namespace
}  // namespace ppm
