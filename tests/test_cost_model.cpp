// The empirical C1..C4 cost model against the paper's worked numbers and
// internal consistency properties.
#include <gtest/gtest.h>

#include "codes/lrc_code.h"
#include "codes/sd_code.h"
#include "decode/cost_model.h"
#include "workload/scenario_gen.h"

namespace ppm {
namespace {

TEST(CostModel, PaperFig2And3Numbers) {
  // §II-B: C1 = 35, C2 = 31; §III-B: C3 = 37, C4 = 29, and the quoted
  // 17.14% = (C1-C4)/C1 reduction.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const FailureScenario sc({2, 6, 10, 13, 14});
  const auto costs = analyze_costs(code, sc);
  ASSERT_TRUE(costs.has_value());
  EXPECT_EQ(costs->c1, 35u);
  EXPECT_EQ(costs->c2, 31u);
  EXPECT_EQ(costs->c3, 37u);
  EXPECT_EQ(costs->c4, 29u);
  EXPECT_EQ(costs->p, 3u);
  EXPECT_EQ(costs->ppm_best(), 29u);
  EXPECT_NEAR(static_cast<double>(costs->c1 - costs->c4) / costs->c1,
              0.1714, 0.0005);
}

TEST(CostModel, UndecodableReturnsNullopt) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  EXPECT_FALSE(analyze_costs(code, FailureScenario({0, 1, 2})).has_value());
}

TEST(CostModel, EmptyScenarioIsFree) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const auto costs = analyze_costs(code, FailureScenario{});
  ASSERT_TRUE(costs.has_value());
  EXPECT_EQ(costs->c1, 0u);
  EXPECT_EQ(costs->p, 0u);
}

TEST(CostModel, C4NeverExceedsC1OnSdWorstCases) {
  // §III-B: C1 - C4 = m^2 (z+1)(r-z) > 0 for every SD worst case.
  for (const std::size_t n : {6u, 11u, 16u}) {
    for (const std::size_t m : {1u, 2u}) {
      for (const std::size_t s : {1u, 2u}) {
        const SDCode code(n, 8, m, s, 8);
        ScenarioGenerator gen(n * 100 + m * 10 + s);
        const auto g = gen.sd_worst_case(code, m, s, 1);
        const auto costs = analyze_costs(code, g.scenario);
        ASSERT_TRUE(costs.has_value());
        EXPECT_LT(costs->c4, costs->c1)
            << "n=" << n << " m=" << m << " s=" << s;
        EXPECT_LT(costs->c2, costs->c3);  // §III-B: C3 - C2 > 0
      }
    }
  }
}

TEST(CostModel, RestEmptyMakesC3EqualC4) {
  // One fault per stripe row: no dependent blocks, both PPM variants
  // degenerate to the sum of the group costs.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const auto costs = analyze_costs(code, FailureScenario({0, 5, 10, 15}));
  ASSERT_TRUE(costs.has_value());
  EXPECT_EQ(costs->c3, costs->c4);
  EXPECT_EQ(costs->p, 4u);
}

TEST(CostModel, LrcLocalRepairCheaperThanGlobal) {
  // A single data-strip failure decodes through its local group (k/l + 1
  // survivors) — dramatically cheaper than a global equation (k + 1).
  const LRCCode code(12, 3, 2, 8);
  const auto costs = analyze_costs(code, FailureScenario({0}));
  ASSERT_TRUE(costs.has_value());
  EXPECT_EQ(costs->p, 1u);
  EXPECT_EQ(costs->ppm_best(), 4u);  // group size 4: 3 peers + local parity
}

TEST(CostModel, ParallelismDegreeMatchesPartition) {
  const SDCode code(8, 8, 2, 2, 8);
  ScenarioGenerator gen(77);
  const auto g = gen.sd_worst_case(code, 2, 2, 1);
  const auto costs = analyze_costs(code, g.scenario);
  ASSERT_TRUE(costs.has_value());
  EXPECT_EQ(costs->p, 7u);  // r - z (paper §IV)
}

}  // namespace
}  // namespace ppm
