// Thread pool and task-group semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/cpu.h"
#include "parallel/task_group.h"
#include "parallel/thread_pool.h"

namespace ppm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.add([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
  EXPECT_EQ(ThreadPool::shared().size(), hardware_threads());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  // All queued work ran before the pool tore down.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, SubmitAfterStopThrows) {
  ThreadPool pool(1);
  EXPECT_FALSE(pool.stopping());
  pool.stop();
  EXPECT_TRUE(pool.stopping());
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
  EXPECT_FALSE(pool.try_submit([] {}));
  pool.stop();  // idempotent
}

TEST(ThreadPool, StopStillRunsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    }
    pool.stop();  // tasks accepted before stop() must still run
    EXPECT_THROW(pool.submit([&ran] { ran.fetch_add(100); }),
                 std::runtime_error);
  }
  EXPECT_EQ(ran.load(), 20);
}

// Regression for the old silent-drop bug: a submit that raced shutdown
// used to enqueue a task no worker would ever pop. Contract now: each
// try_submit either returns true (the task WILL run before the workers
// exit) or false — so after the drain, ran == accepted exactly.
TEST(ThreadPool, SubmitVsStopRaceNeverDropsAcceptedTasks) {
  for (int iter = 0; iter < 10; ++iter) {
    std::atomic<int> ran{0};
    std::atomic<int> accepted{0};
    {
      ThreadPool pool(2);
      std::jthread producer([&] {
        for (int i = 0; i < 100000; ++i) {
          if (!pool.try_submit(
                  [&ran] { ran.fetch_add(1, std::memory_order_relaxed); })) {
            return;  // pool stopped mid-loop
          }
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      });
      std::this_thread::sleep_for(std::chrono::microseconds(50 * iter));
      pool.stop();
      producer.join();
    }  // ~ThreadPool drains the queue and joins the workers here.
    EXPECT_EQ(ran.load(), accepted.load());
  }
}

TEST(TaskGroup, AddOnStoppedPoolThrowsAndWaitReturns) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  std::atomic<int> ran{0};
  group.add([&ran] { ran.fetch_add(1); });
  group.wait();
  pool.stop();
  EXPECT_THROW(group.add([&ran] { ran.fetch_add(1); }), std::runtime_error);
  group.wait();  // rejected task must not leave pending_ stuck -> no hang
  EXPECT_EQ(ran.load(), 1);
}

TEST(TaskGroup, WaitIsReusable) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  group.add([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 1);
  group.add([&counter] { counter.fetch_add(1); });
  group.add([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(TaskGroup, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.wait();  // must not block
  SUCCEED();
}

TEST(TaskGroup, ManyConcurrentGroupsOnSharedPool) {
  std::atomic<int> counter{0};
  {
    TaskGroup g1(ThreadPool::shared());
    TaskGroup g2(ThreadPool::shared());
    for (int i = 0; i < 32; ++i) {
      g1.add([&counter] { counter.fetch_add(1); });
      g2.add([&counter] { counter.fetch_add(1); });
    }
    g1.wait();
    g2.wait();
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  TaskGroup group(pool);
  for (int i = 1; i <= 2000; ++i) {
    group.add([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(sum.load(), 2000LL * 2001 / 2);
}

}  // namespace
}  // namespace ppm
