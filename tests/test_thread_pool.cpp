// Thread pool and task-group semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/cpu.h"
#include "parallel/task_group.h"
#include "parallel/thread_pool.h"

namespace ppm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 100; ++i) {
    group.add([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ZeroThreadsThrows) {
  EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

TEST(ThreadPool, SizeReflectsConstruction) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().size(), 1u);
  EXPECT_EQ(ThreadPool::shared().size(), hardware_threads());
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }
  // All queued work ran before the pool tore down.
  EXPECT_EQ(counter.load(), 50);
}

TEST(TaskGroup, WaitIsReusable) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  group.add([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 1);
  group.add([&counter] { counter.fetch_add(1); });
  group.add([&counter] { counter.fetch_add(1); });
  group.wait();
  EXPECT_EQ(counter.load(), 3);
}

TEST(TaskGroup, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(1);
  TaskGroup group(pool);
  group.wait();  // must not block
  SUCCEED();
}

TEST(TaskGroup, ManyConcurrentGroupsOnSharedPool) {
  std::atomic<int> counter{0};
  {
    TaskGroup g1(ThreadPool::shared());
    TaskGroup g2(ThreadPool::shared());
    for (int i = 0; i < 32; ++i) {
      g1.add([&counter] { counter.fetch_add(1); });
      g2.add([&counter] { counter.fetch_add(1); });
    }
    g1.wait();
    g2.wait();
  }
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, StressManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> sum{0};
  TaskGroup group(pool);
  for (int i = 1; i <= 2000; ++i) {
    group.add([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(sum.load(), 2000LL * 2001 / 2);
}

}  // namespace
}  // namespace ppm
