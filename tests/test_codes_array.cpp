// EVENODD and RDP: the symmetric XOR array codes used as PPM's negative
// controls. Verifies the constructions (RAID-6 double-fault tolerance,
// binary coefficients) and the partition degeneracy the paper's premise
// predicts.
#include <gtest/gtest.h>

#include "codes/evenodd_code.h"
#include "codes/rdp_code.h"
#include "decode/log_table.h"
#include "decode/partition.h"
#include "test_util.h"

namespace ppm {
namespace {

template <typename Code>
void expect_all_double_disk_failures_decodable(const Code& code) {
  const std::size_t n = code.disks();
  const std::size_t r = code.rows();
  for (std::size_t d1 = 0; d1 < n; ++d1) {
    for (std::size_t d2 = d1 + 1; d2 < n; ++d2) {
      std::vector<std::size_t> faulty;
      for (std::size_t i = 0; i < r; ++i) {
        faulty.push_back(code.block_id(i, d1));
        faulty.push_back(code.block_id(i, d2));
      }
      std::sort(faulty.begin(), faulty.end());
      const Matrix f = code.parity_check().select_columns(faulty);
      EXPECT_EQ(f.rank(), f.cols())
          << code.name() << " disks " << d1 << "," << d2;
    }
  }
}

TEST(EvenOdd, Geometry) {
  const EvenOddCode code(5);
  EXPECT_EQ(code.disks(), 7u);   // p data + P + Q
  EXPECT_EQ(code.rows(), 4u);    // p - 1
  EXPECT_EQ(code.check_rows(), 8u);
  EXPECT_EQ(code.parity_blocks().size(), 8u);
  EXPECT_EQ(code.row_parity_disk(), 5u);
  EXPECT_EQ(code.diag_parity_disk(), 6u);
}

TEST(EvenOdd, CoefficientsAreBinary) {
  const EvenOddCode code(5);
  for (const gf::Element v : code.parity_check().data()) EXPECT_LE(v, 1u);
}

TEST(EvenOdd, ChecksIndependentAndEncodable) {
  for (const std::size_t p : {3u, 5u, 7u}) {
    const EvenOddCode code(p);
    EXPECT_EQ(code.parity_check().rank(), code.check_rows()) << "p=" << p;
    const Matrix f =
        code.parity_check().select_columns(code.parity_blocks());
    EXPECT_EQ(f.rank(), f.cols()) << "p=" << p;
  }
}

TEST(EvenOdd, ToleratesAnyTwoDiskFailures) {
  expect_all_double_disk_failures_decodable(EvenOddCode(5));
  expect_all_double_disk_failures_decodable(EvenOddCode(7));
}

TEST(EvenOdd, RoundTripBothDecoders) {
  const EvenOddCode code(5);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 600);
  // Two full disks (one data, one parity).
  std::vector<std::size_t> faulty;
  for (std::size_t i = 0; i < code.rows(); ++i) {
    faulty.push_back(code.block_id(i, 1));
    faulty.push_back(code.block_id(i, code.diag_parity_disk()));
  }
  const FailureScenario sc(faulty);
  const TraditionalDecoder trad(code);
  const PpmDecoder ppm_dec(code);
  stripe.erase(sc);
  ASSERT_TRUE(trad.decode(sc, stripe.block_ptrs(), 512));
  ASSERT_TRUE(stripe.equals(snap));
  stripe.erase(sc);
  ASSERT_TRUE(ppm_dec.decode(sc, stripe.block_ptrs(), 512));
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(EvenOdd, DoubleDataDiskFailureDefeatsPartition) {
  // The paper's premise: symmetric codes under their design failure leave
  // nothing to partition — every check row couples both failed disks with
  // a signature no other row repeats.
  const EvenOddCode code(5);
  std::vector<std::size_t> faulty;
  for (std::size_t i = 0; i < code.rows(); ++i) {
    faulty.push_back(code.block_id(i, 0));
    faulty.push_back(code.block_id(i, 2));
  }
  std::sort(faulty.begin(), faulty.end());
  const LogTable table = LogTable::build(code.parity_check(), faulty);
  const Partition part = make_partition(code.parity_check(), table);
  EXPECT_EQ(part.p(), 0u);
  EXPECT_EQ(part.rest_faulty.size(), faulty.size());
}

TEST(EvenOdd, SingleDiskRebuildFullyPartitions) {
  // One failed disk: each row-parity equation recovers its cell alone.
  const EvenOddCode code(5);
  std::vector<std::size_t> faulty;
  for (std::size_t i = 0; i < code.rows(); ++i) {
    faulty.push_back(code.block_id(i, 3));
  }
  const LogTable table = LogTable::build(code.parity_check(), faulty);
  const Partition part = make_partition(code.parity_check(), table);
  EXPECT_EQ(part.p(), code.rows());
  EXPECT_TRUE(part.rest_empty());
}

TEST(EvenOdd, RejectsNonPrime) {
  EXPECT_THROW(EvenOddCode(4), std::invalid_argument);
  EXPECT_THROW(EvenOddCode(9), std::invalid_argument);
  EXPECT_THROW(EvenOddCode(2), std::invalid_argument);
}

TEST(RDP, Geometry) {
  const RDPCode code(5);
  EXPECT_EQ(code.disks(), 6u);  // p-1 data + row parity + diag parity
  EXPECT_EQ(code.rows(), 4u);
  EXPECT_EQ(code.check_rows(), 8u);
  EXPECT_EQ(code.row_parity_disk(), 4u);
  EXPECT_EQ(code.diag_parity_disk(), 5u);
}

TEST(RDP, DiagonalRowsCoverRowParityColumn) {
  // RDP's defining trait vs EVENODD: diagonals include the row-parity
  // disk's cells.
  const RDPCode code(5);
  const Matrix& h = code.parity_check();
  bool touches_row_parity = false;
  for (std::size_t d = 0; d < code.rows(); ++d) {
    for (std::size_t i = 0; i < code.rows(); ++i) {
      touches_row_parity |=
          h(code.rows() + d, code.block_id(i, code.row_parity_disk())) != 0;
    }
  }
  EXPECT_TRUE(touches_row_parity);
}

TEST(RDP, ChecksIndependentAndEncodable) {
  for (const std::size_t p : {3u, 5u, 7u, 11u}) {
    const RDPCode code(p);
    EXPECT_EQ(code.parity_check().rank(), code.check_rows()) << "p=" << p;
    const Matrix f =
        code.parity_check().select_columns(code.parity_blocks());
    EXPECT_EQ(f.rank(), f.cols()) << "p=" << p;
  }
}

TEST(RDP, ToleratesAnyTwoDiskFailures) {
  expect_all_double_disk_failures_decodable(RDPCode(5));
  expect_all_double_disk_failures_decodable(RDPCode(7));
}

TEST(RDP, RoundTripBothDecoders) {
  const RDPCode code(7);
  Stripe stripe(code, 256);
  const auto snap = test::fill_and_encode(code, stripe, 601);
  std::vector<std::size_t> faulty;
  for (std::size_t i = 0; i < code.rows(); ++i) {
    faulty.push_back(code.block_id(i, 0));
    faulty.push_back(code.block_id(i, 4));
  }
  const FailureScenario sc(faulty);
  const TraditionalDecoder trad(code);
  const PpmDecoder ppm_dec(code);
  stripe.erase(sc);
  ASSERT_TRUE(trad.decode(sc, stripe.block_ptrs(), 256));
  ASSERT_TRUE(stripe.equals(snap));
  stripe.erase(sc);
  ASSERT_TRUE(ppm_dec.decode(sc, stripe.block_ptrs(), 256));
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(RDP, RejectsNonPrime) {
  EXPECT_THROW(RDPCode(6), std::invalid_argument);
  EXPECT_THROW(RDPCode(1), std::invalid_argument);
}

}  // namespace
}  // namespace ppm
