// SD code construction: geometry, the paper's Fig. 2 instance, parity
// placement, width selection and parameter validation.
#include <gtest/gtest.h>

#include "codes/sd_code.h"

namespace ppm {
namespace {

TEST(SDCode, Fig2InstanceMatchesPaper) {
  // SD^{1,1}_{4,4}(8 | 1, 2): H is 5x16; rows 0-3 are per-row XOR parity,
  // row 4 is sum 2^i * b_i over the whole stripe.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const Matrix& h = code.parity_check();
  ASSERT_EQ(h.rows(), 5u);
  ASSERT_EQ(h.cols(), 16u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t l = 0; l < 16; ++l) {
      EXPECT_EQ(h(i, l), (l / 4 == i) ? 1u : 0u) << "row " << i << " col " << l;
    }
  }
  const gf::Field& f = code.field();
  for (std::size_t l = 0; l < 16; ++l) {
    EXPECT_EQ(h(4, l), f.exp2(l)) << "col " << l;
  }
}

TEST(SDCode, Fig2ParityBlocks) {
  // Coding disk 3 (blocks 3, 7, 11, 15) + 1 coding sector. The sector takes
  // the tail data cell: row 3, disk 2 -> block 14.
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const std::vector<std::size_t> expect{3, 7, 11, 14, 15};
  EXPECT_EQ(std::vector<std::size_t>(code.parity_blocks().begin(),
                                     code.parity_blocks().end()),
            expect);
  EXPECT_EQ(code.data_block_count(), 11u);
  EXPECT_TRUE(code.is_parity(14));
  EXPECT_FALSE(code.is_parity(13));
}

TEST(SDCode, GeometryAccessors) {
  const SDCode code(6, 4, 2, 2, 8);
  EXPECT_EQ(code.disks(), 6u);
  EXPECT_EQ(code.rows(), 4u);
  EXPECT_EQ(code.m(), 2u);
  EXPECT_EQ(code.s(), 2u);
  EXPECT_EQ(code.total_blocks(), 24u);
  EXPECT_EQ(code.check_rows(), 2u * 4u + 2u);
  EXPECT_EQ(code.block_id(2, 3), 2u * 6u + 3u);
  EXPECT_EQ(code.coefficients().size(), 4u);
  EXPECT_EQ(code.coefficients()[0], 1u);  // a_0 = 1 always
}

TEST(SDCode, ParityCountIsMRPlusS) {
  for (std::size_t m = 1; m <= 3; ++m) {
    for (std::size_t s = 1; s <= 3; ++s) {
      const SDCode code(8, 8, m, s, 8);
      EXPECT_EQ(code.parity_blocks().size(), m * 8 + s);
    }
  }
}

TEST(SDCode, SectorParitySpillsAcrossRows) {
  // n=4, m=2 leaves 2 data disks per row; s=3 coding sectors must occupy
  // row 7 entirely (blocks 29, 28) and spill into row 6 (block 25).
  const auto ids = SDCode::parity_block_ids(4, 8, 2, 3);
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 29));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 28));
  EXPECT_TRUE(std::binary_search(ids.begin(), ids.end(), 25));
  EXPECT_EQ(ids.size(), 2u * 8u + 3u);
}

TEST(SDCode, DiskParityRowsTouchOnlyTheirRow) {
  const SDCode code(6, 4, 2, 1, 8);
  const Matrix& h = code.parity_check();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t q = 0; q < 2; ++q) {
      for (std::size_t l = 0; l < 24; ++l) {
        if (l / 6 == i) {
          EXPECT_NE(h(i * 2 + q, l), 0u);
        } else {
          EXPECT_EQ(h(i * 2 + q, l), 0u);
        }
      }
    }
  }
  // Sector-parity row is dense.
  for (std::size_t l = 0; l < 24; ++l) EXPECT_NE(h(8, l), 0u);
}

TEST(SDCode, RecommendedWidthSwitchesWithStripeSize) {
  EXPECT_EQ(SDCode::recommended_width(4, 4), 8u);
  EXPECT_EQ(SDCode::recommended_width(15, 17), 8u);   // 255 blocks
  EXPECT_EQ(SDCode::recommended_width(16, 16), 16u);  // 256 blocks
  EXPECT_EQ(SDCode::recommended_width(24, 24), 16u);
  EXPECT_EQ(SDCode::recommended_width(256, 256), 32u);
}

TEST(SDCode, ParameterValidation) {
  EXPECT_THROW(SDCode(4, 4, 0, 1, 8), std::invalid_argument);   // m = 0
  EXPECT_THROW(SDCode(4, 4, 4, 1, 8), std::invalid_argument);   // m = n
  EXPECT_THROW(SDCode(4, 4, 1, 12, 8), std::invalid_argument);  // s too big
  EXPECT_THROW(SDCode(24, 24, 1, 1, 8), std::invalid_argument);  // field small
  EXPECT_THROW(SDCode(4, 4, 1, 1, 8, {1}), std::invalid_argument);  // #coeffs
}

TEST(SDCode, HParityColumnsSolveToZeroSyndrome) {
  // For a correctly encoded stripe H*B = 0; structurally this requires the
  // parity columns of H to have full rank (encodability).
  const SDCode code(6, 4, 2, 2, 8);
  const Matrix f =
      code.parity_check().select_columns(code.parity_blocks());
  EXPECT_EQ(f.rank(), f.cols());
}

TEST(SDCode, NameMentionsParameters) {
  const SDCode code(6, 4, 2, 2, 8);
  EXPECT_NE(code.name().find("SD"), std::string::npos);
  EXPECT_NE(code.name().find('6'), std::string::npos);
}

TEST(SDCode, LargeStripeUsesWiderField) {
  const unsigned w = SDCode::recommended_width(24, 16);
  ASSERT_EQ(w, 16u);
  const SDCode code(24, 16, 2, 2, w);
  EXPECT_EQ(code.total_blocks(), 384u);
  EXPECT_EQ(code.field().w(), 16u);
}

}  // namespace
}  // namespace ppm
