// STAR code: triple-fault-tolerant symmetric array code.
#include <gtest/gtest.h>

#include <algorithm>

#include "codes/star_code.h"
#include "test_util.h"
#include "workload/scenario_gen.h"

namespace ppm {
namespace {

TEST(Star, Geometry) {
  const StarCode code(5);
  EXPECT_EQ(code.disks(), 8u);  // p data + 3 parity
  EXPECT_EQ(code.rows(), 4u);
  EXPECT_EQ(code.check_rows(), 12u);
  EXPECT_EQ(code.parity_blocks().size(), 12u);
  EXPECT_EQ(code.row_parity_disk(), 5u);
  EXPECT_EQ(code.diag_parity_disk(), 6u);
  EXPECT_EQ(code.anti_parity_disk(), 7u);
}

TEST(Star, CoefficientsAreBinary) {
  const StarCode code(5);
  for (const gf::Element v : code.parity_check().data()) EXPECT_LE(v, 1u);
}

TEST(Star, ChecksIndependentAndEncodable) {
  for (const std::size_t p : {3u, 5u, 7u}) {
    const StarCode code(p);
    EXPECT_EQ(code.parity_check().rank(), code.check_rows()) << "p=" << p;
    const Matrix f =
        code.parity_check().select_columns(code.parity_blocks());
    EXPECT_EQ(f.rank(), f.cols()) << "p=" << p;
  }
}

TEST(Star, ToleratesAnyThreeDiskFailures) {
  const StarCode code(5);
  const std::size_t n = code.disks();
  const std::size_t r = code.rows();
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a + 1; b < n; ++b) {
      for (std::size_t c = b + 1; c < n; ++c) {
        std::vector<std::size_t> faulty;
        for (std::size_t i = 0; i < r; ++i) {
          faulty.push_back(code.block_id(i, a));
          faulty.push_back(code.block_id(i, b));
          faulty.push_back(code.block_id(i, c));
        }
        std::sort(faulty.begin(), faulty.end());
        const Matrix f = code.parity_check().select_columns(faulty);
        EXPECT_EQ(f.rank(), f.cols()) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(Star, RoundTripBothDecoders) {
  const StarCode code(5);
  Stripe stripe(code, 512);
  const auto snap = test::fill_and_encode(code, stripe, 650);
  ScenarioGenerator gen(651);
  const auto g = gen.disk_failures(code, 3);
  const TraditionalDecoder trad(code);
  const PpmDecoder ppm_dec(code);
  stripe.erase(g.scenario);
  ASSERT_TRUE(trad.decode(g.scenario, stripe.block_ptrs(), 512));
  ASSERT_TRUE(stripe.equals(snap));
  stripe.erase(g.scenario);
  ASSERT_TRUE(ppm_dec.decode(g.scenario, stripe.block_ptrs(), 512));
  EXPECT_TRUE(stripe.equals(snap));
}

TEST(Star, SymmetricParityArity) {
  // All three parity families draw on the same number of data blocks per
  // row class — STAR is symmetric in the paper's sense (no dedicated
  // small parity exists).
  const StarCode code(5);
  const Matrix& h = code.parity_check();
  // Every check row has at least p nonzeros (row rows: p+1; diagonal rows
  // carry the adjuster, so more).
  for (std::size_t row = 0; row < h.rows(); ++row) {
    std::size_t nz = 0;
    for (std::size_t c = 0; c < h.cols(); ++c) nz += (h(row, c) != 0);
    EXPECT_GE(nz, code.p()) << "row " << row;
  }
}

TEST(Star, RejectsNonPrime) {
  EXPECT_THROW(StarCode(4), std::invalid_argument);
  EXPECT_THROW(StarCode(8), std::invalid_argument);
}

}  // namespace
}  // namespace ppm
