// Incremental XOR scheduling for binary decoding matrices.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "codes/crs_code.h"
#include "decode/xor_schedule.h"
#include "test_util.h"

namespace ppm {
namespace {

// Reference: targets = G * sources over GF(2) regions.
std::vector<std::vector<std::uint8_t>> naive_apply(
    const Matrix& g, const std::vector<std::vector<std::uint8_t>>& sources,
    std::size_t bytes) {
  std::vector<std::vector<std::uint8_t>> out(g.rows(),
                                             std::vector<std::uint8_t>(bytes));
  for (std::size_t r = 0; r < g.rows(); ++r) {
    for (std::size_t c = 0; c < g.cols(); ++c) {
      if (g(r, c) == 0) continue;
      for (std::size_t i = 0; i < bytes; ++i) out[r][i] ^= sources[c][i];
    }
  }
  return out;
}

void expect_schedule_correct(const Matrix& g, std::uint64_t seed) {
  const auto schedule = plan_xor_schedule(g);
  ASSERT_TRUE(schedule.has_value());
  const std::size_t bytes = 128;
  Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> sources(g.cols());
  std::vector<std::uint8_t*> src_ptrs(g.cols());
  for (std::size_t c = 0; c < g.cols(); ++c) {
    sources[c] = test::random_bytes(rng, bytes);
    src_ptrs[c] = sources[c].data();
  }
  std::vector<std::vector<std::uint8_t>> targets(
      g.rows(), std::vector<std::uint8_t>(bytes, 0xEE));
  std::vector<std::uint8_t*> tgt_ptrs(g.rows());
  for (std::size_t r = 0; r < g.rows(); ++r) tgt_ptrs[r] = targets[r].data();

  execute_xor_schedule(*schedule, src_ptrs.data(), tgt_ptrs.data(), bytes);
  EXPECT_EQ(targets, naive_apply(g, sources, bytes));
}

TEST(XorSchedule, RejectsNonBinaryMatrices) {
  const Matrix g(gf::field(8), 2, 2, {1, 2, 0, 1});
  EXPECT_FALSE(plan_xor_schedule(g).has_value());
}

TEST(XorSchedule, DirectScheduleForUnrelatedRows) {
  const Matrix g(gf::field(8), 2, 4, {1, 1, 0, 0, 0, 0, 1, 1});
  const auto s = plan_xor_schedule(g);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->naive_ops, 4u);
  EXPECT_EQ(s->cost(), 4u);  // nothing to share
  expect_schedule_correct(g, 700);
}

TEST(XorSchedule, SharesNearlyIdenticalRows) {
  // Row 1 = row 0 plus one extra column: incremental = copy + 1 XOR,
  // instead of 5 direct XORs.
  const Matrix g(gf::field(8), 2, 6,
                 {1, 1, 1, 1, 0, 0,
                  1, 1, 1, 1, 1, 0});
  const auto s = plan_xor_schedule(g);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->naive_ops, 9u);
  EXPECT_EQ(s->cost(), 6u);  // 4 direct + copy + 1 fix-up
  EXPECT_GT(s->saving(), 0.3);
  expect_schedule_correct(g, 701);
}

TEST(XorSchedule, ZeroRowProducesZeroTarget) {
  const Matrix g(gf::field(8), 2, 3, {1, 0, 1, 0, 0, 0});
  expect_schedule_correct(g, 702);
}

TEST(XorSchedule, RandomBinaryMatricesRoundTrip) {
  Rng rng(703);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t rows = 1 + rng.bounded(12);
    const std::size_t cols = 1 + rng.bounded(24);
    Matrix g(gf::field(8), rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t c = 0; c < cols; ++c) {
        g(r, c) = rng.bounded(100) < 45 ? 1 : 0;
      }
    }
    expect_schedule_correct(g, 704 + trial);
    const auto s = plan_xor_schedule(g);
    // naive_ops is pure u(G); each all-zero row costs 2 extra fix-up ops
    // the naive count does not include.
    std::size_t zero_rows = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      bool zero = true;
      for (std::size_t c = 0; c < cols && zero; ++c) zero = g(r, c) == 0;
      if (zero) ++zero_rows;
    }
    EXPECT_LE(s->cost(), s->naive_ops + 2 * zero_rows);
  }
}

TEST(XorSchedule, SavesOnCrsDecodingMatrix) {
  // The real use case: the decoding matrix of a CRS whole-strip failure.
  const CRSCode code(8, 2, 8);
  std::vector<std::size_t> faulty = code.strip_blocks(3);
  std::sort(faulty.begin(), faulty.end());
  std::vector<std::size_t> rows(code.check_rows());
  std::iota(rows.begin(), rows.end(), 0);
  const auto plan = SubPlan::make(code.parity_check(), rows, faulty, faulty,
                                  Sequence::kMatrixFirst);
  ASSERT_TRUE(plan.has_value());
  // Recover G from the parity-check algebra to feed the scheduler.
  const Matrix f_cols = code.parity_check().select_columns(faulty);
  const auto sel = independent_rows(f_cols);
  ASSERT_TRUE(sel.has_value());
  std::vector<std::size_t> survivors;
  for (std::size_t c = 0; c < code.total_blocks(); ++c) {
    if (!std::binary_search(faulty.begin(), faulty.end(), c)) {
      survivors.push_back(c);
    }
  }
  const Matrix g = *f_cols.select_rows(*sel).inverse() *
                   code.parity_check().select_columns(survivors)
                       .select_rows(*sel);
  const auto schedule = plan_xor_schedule(g);
  ASSERT_TRUE(schedule.has_value()) << "CRS decode matrix must stay binary";
  EXPECT_LE(schedule->cost(), schedule->naive_ops);
  expect_schedule_correct(g, 705);
}

}  // namespace
}  // namespace ppm
