// Closed-form cost formulas (§III-B) against the worked example, the
// paper's identities, and the empirical cost model.
#include <gtest/gtest.h>

#include <array>

#include "analysis/closed_form.h"
#include "codes/sd_code.h"
#include "decode/cost_model.h"
#include "workload/scenario_gen.h"

namespace ppm {
namespace {

TEST(ClosedForm, PaperExampleValues) {
  const ClosedFormCosts c = sd_closed_form(4, 4, 1, 1, 1);
  EXPECT_EQ(c.c1, 35);
  EXPECT_EQ(c.c2, 31);
  EXPECT_EQ(c.c3, 37);
  EXPECT_EQ(c.c4, 29);
}

TEST(ClosedForm, C1MinusC4Identity) {
  // C1 - C4 = m^2 (z+1)(r-z). (The paper also prints an (r-1) variant —
  // a typo; the formulas themselves expand to (r-z). They agree at z=1.)
  for (long long n = 4; n <= 24; ++n) {
    for (long long r = 4; r <= 24; r += 4) {
      for (long long m = 1; m <= 3; ++m) {
        for (long long s = 1; s <= 3; ++s) {
          for (long long z = 1; z <= s; ++z) {
            const ClosedFormCosts c = sd_closed_form(n, r, m, s, z);
            EXPECT_EQ(c.c1 - c.c4, m * m * (z + 1) * (r - z))
                << "n=" << n << " r=" << r << " m=" << m << " s=" << s
                << " z=" << z;
          }
        }
      }
    }
  }
}

TEST(ClosedForm, C3MinusC2Identity) {
  // C3 - C2 = m (r-1)(m z + s).
  for (long long n = 6; n <= 24; n += 3) {
    for (long long r = 4; r <= 24; r += 5) {
      for (long long m = 1; m <= 3; ++m) {
        for (long long s = 1; s <= 3; ++s) {
          for (long long z = 1; z <= s; ++z) {
            const ClosedFormCosts c = sd_closed_form(n, r, m, s, z);
            EXPECT_EQ(c.c3 - c.c2, m * (r - 1) * (m * z + s));
          }
        }
      }
    }
  }
}

TEST(ClosedForm, C2AndC4AreTheSmallPair) {
  // §III-B: "the values of C2 and C4 are smaller among C1..C4".
  for (long long n = 4; n <= 24; ++n) {
    for (long long r = 4; r <= 24; r += 2) {
      for (long long m = 1; m <= 3 && m < n; ++m) {
        for (long long s = 1; s <= 3; ++s) {
          for (long long z = 1; z <= s && z <= r; ++z) {
            const ClosedFormCosts c = sd_closed_form(n, r, m, s, z);
            EXPECT_LE(c.c4, c.c1);
            EXPECT_LE(c.c2, c.c3);
          }
        }
      }
    }
  }
}

TEST(ClosedForm, C4OverC1ShrinksWithZAndR) {
  // Fig. 5 and Fig. 6 trends: the C4/C1 ratio decreases as z or r grows.
  const auto ratio = [](std::size_t n, std::size_t r, std::size_t m,
                        std::size_t s, std::size_t z) {
    const ClosedFormCosts c = sd_closed_form(n, r, m, s, z);
    return static_cast<double>(c.c4) / static_cast<double>(c.c1);
  };
  EXPECT_GT(ratio(16, 16, 2, 3, 1), ratio(16, 16, 2, 3, 2));
  EXPECT_GT(ratio(16, 16, 2, 3, 2), ratio(16, 16, 2, 3, 3));
  EXPECT_GT(ratio(16, 4, 2, 2, 1), ratio(16, 8, 2, 2, 1));
  EXPECT_GT(ratio(16, 8, 2, 2, 1), ratio(16, 24, 2, 2, 1));
}

TEST(ClosedForm, MatchesEmpiricalOnFig2Example) {
  const SDCode code(4, 4, 1, 1, 8, {1, 2});
  const auto emp = analyze_costs(code, FailureScenario({2, 6, 10, 13, 14}));
  ASSERT_TRUE(emp.has_value());
  const ClosedFormCosts cf = sd_closed_form(4, 4, 1, 1, 1);
  EXPECT_EQ(static_cast<long long>(emp->c1), cf.c1);
  EXPECT_EQ(static_cast<long long>(emp->c2), cf.c2);
  EXPECT_EQ(static_cast<long long>(emp->c3), cf.c3);
  EXPECT_EQ(static_cast<long long>(emp->c4), cf.c4);
}

TEST(ClosedForm, TracksEmpiricalWithinOnePercent) {
  // The formulas assume every decoding-matrix entry is nonzero; accidental
  // GF cancellations make the empirical count an occasionally-smaller
  // near-match (observed deviations stay within a few percent, largest for
  // C3 at z = s). Assert the formulas are near-upper bounds.
  for (const std::size_t n : {8u, 16u, 21u}) {
    for (const std::size_t m : {1u, 2u, 3u}) {
      for (const std::size_t s : {1u, 3u}) {
        const std::size_t r = 8;
        const SDCode code(n, r, m, s, 8);
        for (std::size_t z = 1; z <= s && s <= z * (n - m); ++z) {
          ScenarioGenerator gen(n * 31 + m * 7 + s * 3 + z);
          const auto g = gen.sd_worst_case(code, m, s, z);
          const auto emp = analyze_costs(code, g.scenario);
          ASSERT_TRUE(emp.has_value());
          const ClosedFormCosts cf = sd_closed_form(n, r, m, s, z);
          // The fit is tight at z = 1 (the setting of Figs. 4, 6-9); for
          // z > 1 accidental cancellations accumulate, especially at small
          // n, so the band widens.
          const double lower = z == 1 ? 0.98 : 0.85;
          const auto near = [&](std::size_t e, long long c) {
            EXPECT_LE(static_cast<double>(e),
                      1.01 * static_cast<double>(c) + 2.0);
            EXPECT_GT(static_cast<double>(e) + 2.0,
                      lower * static_cast<double>(c));
          };
          near(emp->c1, cf.c1);
          near(emp->c2, cf.c2);
          near(emp->c3, cf.c3);
          near(emp->c4, cf.c4);
        }
      }
    }
  }
}


TEST(ClosedForm, RatiosGrowWithNAndS) {
  // Fig. 4 trends: C2/C1, C3/C1 and C4/C1 all increase with n and with s.
  const auto ratios = [](long long n, long long s) {
    const ClosedFormCosts c = sd_closed_form(n, 16, 2, s, 1);
    const double c1 = static_cast<double>(c.c1);
    return std::array<double, 3>{c.c2 / c1, c.c3 / c1, c.c4 / c1};
  };
  for (long long n = 6; n < 24; ++n) {
    const auto a = ratios(n, 2);
    const auto b = ratios(n + 1, 2);
    for (int i = 0; i < 3; ++i) EXPECT_LT(a[i], b[i]) << "n=" << n;
  }
  for (long long s = 1; s < 3; ++s) {
    const auto a = ratios(16, s);
    const auto b = ratios(16, s + 1);
    // C4/C1 grows with s; (C2, C3)/C1 shrink with s in the formulas' range
    // — the paper's panels show exactly this crossing per m.
    EXPECT_LT(a[2], b[2]) << "s=" << s;
  }
}

TEST(ClosedForm, SavingGrowsWithM) {
  // Fig. 4: the ratios "increase more quickly as the increased value of m"
  // — equivalently the C4/C1 saving at fixed (n, s) deepens with m.
  for (long long m = 1; m < 3; ++m) {
    const ClosedFormCosts a = sd_closed_form(16, 16, m, 2, 1);
    const ClosedFormCosts b = sd_closed_form(16, 16, m + 1, 2, 1);
    const double ra = static_cast<double>(a.c4) / static_cast<double>(a.c1);
    const double rb = static_cast<double>(b.c4) / static_cast<double>(b.c1);
    EXPECT_GT(ra, rb) << "m=" << m;
  }
}

}  // namespace
}  // namespace ppm
