// ppm_fuzz — time-budgeted randomized stress harness.
//
// Generates random code instances (every family plus arbitrary random
// parity-check matrices), random failure scenarios (decodable or not) and
// random block sizes, and checks on every trial that:
//   * PPM and the traditional decoder agree on decodability;
//   * both restore the stripe byte-for-byte when decodable;
//   * the realized PPM op count equals the cost model's min(C3, C4);
//   * the stripe passes syndrome verification afterwards;
//   * the cached Codec plan for the scenario is planverify-clean, and a
//     random binary matrix's XOR schedule survives symbolic replay;
//   * the superoptimizer (ppm::xoropt) run over every random binary
//     schedule only accepts rewrites that re-prove — symbolic GF(2)
//     replay plus hazard analysis — and the optimized schedule decodes
//     byte-identically to the serial greedy one;
//   * the plan's parallel fan-out and the schedule's target units are
//     hazard-free (ppm::hazard) with a sane parallelism profile
//     (critical path <= total work, speedup bound >= 1);
//   * every decodable plan survives a plan-store round trip: serialize →
//     deserialize → planverify + hazard re-proof → byte-identical decode;
//   * a silently corrupted surviving block served through a fault-injecting
//     source is always caught by the resilient pipeline's CRC digests
//     (corruption_detected), and any claimed complete recovery is
//     byte-identical.
//
//   ./ppm_fuzz [seconds] [seed]     (defaults: 10 seconds, seed 1 —
//                                    deterministic for reproducibility)
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <memory>

#include "ppm.h"

using namespace ppm;

namespace {

std::unique_ptr<ErasureCode> random_code(Rng& rng) {
  switch (rng.bounded(9)) {
    case 0: {
      // Kept small: every fresh SD geometry pays an exhaustive
      // coefficient certification at construction (cached per
      // process). This range covers both perfect geometries (n = 6)
      // and provably deficient ones (n = 8) while certifying in well
      // under a second each.
      const std::size_t n = 4 + rng.bounded(5);
      const std::size_t r = 4 + rng.bounded(5);
      const std::size_t m = 1 + rng.bounded(std::min<std::size_t>(2, n - 2));
      const std::size_t max_s =
          std::min<std::size_t>(2, (n - m) * r - 1);
      const std::size_t s = 1 + rng.bounded(max_s);
      return std::make_unique<SDCode>(n, r, m, s,
                                      SDCode::recommended_width(n, r));
    }
    case 1: {
      const std::size_t k = 4 + rng.bounded(16);
      const std::size_t l = 1 + rng.bounded(std::min<std::size_t>(4, k));
      return std::make_unique<LRCCode>(k, l, 1 + rng.bounded(3), 8);
    }
    case 2: {
      const std::size_t k = 4 + rng.bounded(12);
      const std::size_t l = 1 + rng.bounded(std::min<std::size_t>(3, k));
      return std::make_unique<XorbasLRCCode>(k, l, 1 + rng.bounded(4), 8);
    }
    case 3:
      return std::make_unique<RSCode>(4 + rng.bounded(16),
                                      1 + rng.bounded(4), 8);
    case 4:
      return std::make_unique<CRSCode>(3 + rng.bounded(8),
                                       1 + rng.bounded(3), 8);
    case 5: {
      constexpr std::size_t primes[] = {3, 5, 7, 11};
      return std::make_unique<EvenOddCode>(primes[rng.bounded(4)]);
    }
    case 6: {
      constexpr std::size_t primes[] = {3, 5, 7, 11};
      return std::make_unique<RDPCode>(primes[rng.bounded(4)]);
    }
    case 7: {
      constexpr std::size_t primes[] = {5, 7, 11};
      return std::make_unique<StarCode>(primes[rng.bounded(3)]);
    }
    default: {
      // Same certification-cost reasoning as the SD case above.
      const std::size_t m = 1 + rng.bounded(2);
      return std::make_unique<PMDSCode>(5 + rng.bounded(3), 4 + rng.bounded(4),
                                        m, 1 + rng.bounded(2), 8);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::strtod(argv[1], nullptr) : 10;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  Rng rng(seed);
  Timer clock;

  std::size_t trials = 0;
  std::size_t decodable = 0;
  std::size_t rejected = 0;
  std::size_t verified_plans = 0;
  std::size_t verified_schedules = 0;
  std::size_t optimized_schedules = 0;
  std::size_t round_trips = 0;
  std::size_t corruption_drills = 0;
  std::size_t skipped_constructions = 0;
  while (clock.seconds() < budget) {
    ++trials;

    // Random binary matrix → XOR schedule → symbolic replay must prove it
    // hazard-free and equivalent to the matrix.
    {
      const std::size_t srows = 1 + rng.bounded(12);
      const std::size_t scols = 1 + rng.bounded(20);
      Matrix g(gf::field(8), srows, scols);
      for (std::size_t r = 0; r < srows; ++r) {
        for (std::size_t c = 0; c < scols; ++c) {
          g(r, c) = rng.bounded(100) < 45 ? 1 : 0;
        }
      }
      const auto sched = plan_xor_schedule(g);
      if (!sched.has_value()) {
        std::fprintf(stderr, "FUZZ FAIL (binary matrix rejected)\n");
        return 1;
      }
      const auto verdict = planverify::verify_xor_schedule(g, *sched);
      if (!verdict.ok()) {
        std::fprintf(stderr, "FUZZ FAIL (xor schedule verifier):\n%s\n",
                     planverify::to_json(verdict.violations).c_str());
        return 1;
      }
      // The planner's schedule must also be race-free as a parallel
      // program over target units, not just serially correct.
      const auto hz = hazard::analyze_schedule(*sched, g);
      if (!hz.ok() || hz.critical_path > hz.total_work ||
          hz.speedup_bound() < 1.0) {
        std::fprintf(stderr, "FUZZ FAIL (schedule hazard):\n%s\n",
                     planverify::to_json(hz.violations).c_str());
        return 1;
      }
      ++verified_schedules;

      // Superoptimizer drill: every schedule goes through the rewrite
      // pipeline. The result must carry a passing proof (an accepted
      // rewrite without one is the bug this drill exists to catch), cost
      // no more than the greedy input, keep honest books
      // (accepted + rejected == passes), and decode byte-identically to
      // the serial greedy schedule.
      const auto opt = xoropt::optimize(g, *sched);
      if (opt.stats.rewrites_accepted + opt.stats.rewrites_rejected !=
              opt.stats.passes ||
          opt.schedule.cost() > sched->cost() ||
          opt.schedule.naive_ops != sched->naive_ops) {
        std::fprintf(stderr, "FUZZ FAIL (xoropt stats incoherent)\n");
        return 1;
      }
      const auto proof = xoropt::prove(g, opt.schedule);
      if (!proof.empty()) {
        std::fprintf(stderr, "FUZZ FAIL (xoropt accepted unproven):\n%s\n",
                     planverify::to_json(proof).c_str());
        return 1;
      }
      {
        const std::size_t sbytes = 8 * (1 + rng.bounded(8));
        std::vector<std::vector<std::uint8_t>> source_data(
            scols, std::vector<std::uint8_t>(sbytes));
        std::vector<std::uint8_t*> source_ptrs(scols);
        for (std::size_t c = 0; c < scols; ++c) {
          for (auto& b : source_data[c]) {
            b = static_cast<std::uint8_t>(rng.bounded(256));
          }
          source_ptrs[c] = source_data[c].data();
        }
        std::vector<std::vector<std::uint8_t>> greedy_out(
            srows, std::vector<std::uint8_t>(sbytes));
        std::vector<std::vector<std::uint8_t>> opt_out(
            srows, std::vector<std::uint8_t>(sbytes));
        std::vector<std::uint8_t*> greedy_ptrs(srows);
        std::vector<std::uint8_t*> opt_ptrs(srows);
        for (std::size_t r = 0; r < srows; ++r) {
          greedy_ptrs[r] = greedy_out[r].data();
          opt_ptrs[r] = opt_out[r].data();
        }
        execute_xor_schedule(*sched, source_ptrs.data(), greedy_ptrs.data(),
                             sbytes);
        execute_xor_schedule(opt.schedule, srows, source_ptrs.data(),
                             opt_ptrs.data(), sbytes);
        for (std::size_t r = 0; r < srows; ++r) {
          if (greedy_out[r] != opt_out[r]) {
            std::fprintf(stderr,
                         "FUZZ FAIL (xoropt bytes diverge at row %zu)\n", r);
            return 1;
          }
        }
      }
      ++optimized_schedules;
    }
    // Construction is fail-soft: SD/PMDS geometries now pay an
    // exhaustive coefficient certification, and a randomly drawn
    // geometry may be degenerate or admit no certifiable tuple. Either
    // way the library throws — that is its contract, not a fuzz
    // finding — so skip the trial and keep drilling.
    std::unique_ptr<ErasureCode> code;
    try {
      code = random_code(rng);
    } catch (const std::exception&) {
      ++skipped_constructions;
      continue;
    }
    const std::size_t block =
        code->field().symbol_bytes() * (8 + rng.bounded(64));
    Stripe stripe(*code, block);
    Rng fill(seed + trials);
    stripe.fill_data(fill);
    const TraditionalDecoder trad(*code);
    if (!trad.encode(stripe.block_ptrs(), block)) {
      std::fprintf(stderr, "FUZZ FAIL (encode): %s\n", code->name().c_str());
      return 1;
    }
    const auto snap = stripe.snapshot();

    // Random failure set, possibly beyond tolerance.
    const std::size_t count = 1 + rng.bounded(code->check_rows() + 1);
    std::vector<std::size_t> faulty;
    while (faulty.size() < std::min(count, code->total_blocks() - 1)) {
      const std::size_t b = rng.bounded(code->total_blocks());
      if (std::find(faulty.begin(), faulty.end(), b) == faulty.end()) {
        faulty.push_back(b);
      }
    }
    const FailureScenario sc(faulty);

    stripe.erase(sc);
    const auto tr = trad.decode(sc, stripe.block_ptrs(), block);
    const bool trad_ok = tr.has_value() && stripe.equals(snap);

    std::memcpy(stripe.block(0), snap.data(), snap.size());
    stripe.erase(sc);
    PpmOptions opts;
    opts.threads = 1 + static_cast<unsigned>(rng.bounded(4));
    const PpmDecoder ppm_dec(*code, opts);
    const auto pr = ppm_dec.decode(sc, stripe.block_ptrs(), block);
    const bool ppm_ok = pr.has_value() && stripe.equals(snap);

    if (tr.has_value() != pr.has_value()) {
      std::fprintf(stderr, "FUZZ FAIL (decodability disagreement): %s\n",
                   code->name().c_str());
      return 1;
    }
    if (tr.has_value()) {
      ++decodable;
      if (!trad_ok || !ppm_ok) {
        std::fprintf(stderr, "FUZZ FAIL (bytes): %s\n", code->name().c_str());
        return 1;
      }
      const auto costs = analyze_costs(*code, sc);
      if (!costs.has_value() ||
          pr->stats.mult_xors != costs->ppm_best()) {
        std::fprintf(stderr, "FUZZ FAIL (cost model): %s\n",
                     code->name().c_str());
        return 1;
      }
      if (!stripe_consistent(*code, stripe.block_ptrs(), block)) {
        std::fprintf(stderr, "FUZZ FAIL (syndrome): %s\n",
                     code->name().c_str());
        return 1;
      }
      // Every plan the codec would cache must be verifier-clean.
      Codec codec(*code);
      const auto plan = codec.plan_for(sc);
      if (plan == nullptr) {
        std::fprintf(stderr, "FUZZ FAIL (codec plan missing): %s\n",
                     code->name().c_str());
        return 1;
      }
      const auto verdict = planverify::verify_plan(*code, sc, *plan);
      if (!verdict.ok()) {
        std::fprintf(stderr, "FUZZ FAIL (plan verifier): %s\n%s\n",
                     code->name().c_str(),
                     planverify::to_json(verdict.violations).c_str());
        return 1;
      }
      // And its group fan-out must be provably race-free under every
      // interleaving, with a coherent parallelism profile.
      const auto hz = hazard::analyze_plan(*plan);
      if (!hz.ok() || hz.critical_path > hz.total_work ||
          (hz.critical_path == 0) != (hz.total_work == 0) ||
          hz.speedup_bound() < 1.0) {
        std::fprintf(stderr, "FUZZ FAIL (plan hazard): %s\n%s\n",
                     code->name().c_str(),
                     planverify::to_json(hz.violations).c_str());
        return 1;
      }
      ++verified_plans;
      // Plan-store round trip: serialize -> deserialize -> re-prove ->
      // byte-identical decode against the fresh plan.
      const auto bytes = planstore::serialize_plan(*code, sc, *plan);
      std::string err;
      auto stored = planstore::deserialize_plan(bytes, *code, &err);
      if (!stored.has_value()) {
        std::fprintf(stderr, "FUZZ FAIL (store round trip): %s: %s\n",
                     code->name().c_str(), err.c_str());
        return 1;
      }
      const auto rt_verdict =
          planverify::verify_plan(*code, sc, stored->plan);
      const auto rt_hz = hazard::analyze_plan(stored->plan);
      if (!rt_verdict.ok() || !rt_hz.ok() ||
          stored->stored_profile != plan->profile() ||
          !std::equal(stored->scenario.faulty().begin(),
                      stored->scenario.faulty().end(), sc.faulty().begin(),
                      sc.faulty().end())) {
        std::fprintf(stderr, "FUZZ FAIL (round-trip re-verify): %s\n",
                     code->name().c_str());
        return 1;
      }
      stripe.erase(sc);
      stored->plan.execute(stripe.block_ptrs(), block);
      if (!stripe.equals(snap)) {
        std::fprintf(stderr, "FUZZ FAIL (round-trip decode bytes): %s\n",
                     code->name().c_str());
        return 1;
      }
      ++round_trips;

      // Corruption drill: serve the stripe through a fault-injecting
      // source that silently flips bytes in one surviving block. With
      // per-block digests the resilient pipeline must notice (CRC
      // mismatch -> corruption_detected) and, whenever it claims complete
      // recovery, still produce the original bytes.
      {
        // Victim pool: survivors the plan actually reads — a block no
        // sub-plan touches is never fetched, so its corruption is
        // invisible by design (scrubbing, not decoding, owns that case).
        std::vector<std::size_t> read_set;
        const auto collect = [&](const SubPlan& sub) {
          for (const std::size_t s : sub.survivors()) {
            if (!sc.contains(s) &&
                std::find(read_set.begin(), read_set.end(), s) ==
                    read_set.end()) {
              read_set.push_back(s);
            }
          }
        };
        for (const SubPlan& sub : plan->groups()) collect(sub);
        if (plan->rest().has_value()) collect(*plan->rest());
        if (read_set.empty()) continue;
        const std::size_t victim =
            read_set[rng.bounded(read_set.size())];
        std::vector<const std::uint8_t*> backing(code->total_blocks());
        std::vector<std::uint32_t> digests(code->total_blocks());
        for (std::size_t b = 0; b < code->total_blocks(); ++b) {
          backing[b] = snap.data() + b * block;
          digests[b] = crc32(backing[b], block);
        }
        io::MemoryBlockSource mem(backing.data(), code->total_blocks(),
                                  block);
        io::FaultInjectingSource source(mem);
        io::FaultSpec spec;
        spec.corrupt = true;
        spec.corrupt_offset = rng.bounded(block);
        spec.corrupt_bytes =
            1 + rng.bounded(std::min<std::size_t>(8, block -
                                                     spec.corrupt_offset));
        source.set_fault(victim, spec);

        stripe.erase(sc);
        const auto out = codec.decode_resilient(sc, source,
                                                stripe.block_ptrs(), block,
                                                {}, digests);
        if (out.corruption_detected == 0) {
          std::fprintf(stderr,
                       "FUZZ FAIL (silent corruption undetected): %s "
                       "block %zu\n",
                       code->name().c_str(), victim);
          return 1;
        }
        if (out.complete && !stripe.equals(snap)) {
          std::fprintf(stderr,
                       "FUZZ FAIL (corruption drill bytes): %s block %zu\n",
                       code->name().c_str(), victim);
          return 1;
        }
        ++corruption_drills;
        std::memcpy(stripe.block(0), snap.data(), snap.size());
      }
    } else {
      ++rejected;
      std::memcpy(stripe.block(0), snap.data(), snap.size());
    }
  }
  std::printf("ppm_fuzz: %zu trials in %.1fs (%zu decodable, %zu beyond "
              "tolerance, %zu constructions skipped), %zu plans + %zu XOR "
              "schedules verifier-clean, "
              "%zu schedules superoptimized proof-clean, "
              "%zu store round trips, %zu corruption drills, 0 failures\n",
              trials, clock.seconds(), decodable, rejected,
              skipped_constructions, verified_plans, verified_schedules,
              optimized_schedules, round_trips, corruption_drills);
  return 0;
}
