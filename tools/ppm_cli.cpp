// ppm_cli — command-line front end for the PPM library.
//
//   ppm_cli info     --code <family> [params]      code geometry + H census
//   ppm_cli costs    --code <family> [params]      C1..C4 + partition shape
//   ppm_cli bench    --code <family> [params]      traditional vs PPM timing
//   ppm_cli batch    --code <family> [params]      Codec batch decode + metrics JSON
//   ppm_cli selftest --code <family> [params]      encode/erase/decode/verify
//   ppm_cli sim      --code <family> [params]      failure-stream simulation
//   ppm_cli verify   --code <family> [params]      static plan verification
//                    [--scenario 1,5,9] [--sweep <disks>]
//   ppm_cli analyze  --code <family> [params]      concurrency-hazard proof +
//                    [--scenario 1,5,9] [--sweep <disks>]   critical-path bounds
//                    [--optimize 1]   proof-carrying XOR-schedule superoptimizer
//   ppm_cli store {build|ls|check|gc} --dir <dir>  persistent plan store:
//                    [--code <family> [params]] [--sweep <disks>]
//                    build/list/re-verify/garbage-collect plan records
//   ppm_cli chaos    --code <family> [params]      seeded fault-injection
//                    [--sweep <disks>] [--seed S] [--rounds R]   campaign
//                    [--permanent P] [--transient P] [--corrupt P]   against
//                    [--straggle P] [--retries N]   the resilient pipeline
//   ppm_cli serve    --code <family> [params]      decode-serving campaign:
//                    [--sweep <disks>] [--seed S] [--rounds R]   async fetch +
//                    [--requests N] [--straggle P] [--delay-us U]  hedged reads
//                    [--queue D] [--dispatchers N] [--reactors N]  + overlapped
//                    [--serial 0|1] [--assert-ratio P] [--assert-floor-us U]
//                    [--scrub-rate-kbps K]   group solves vs the serial
//                    resilient baseline, optionally beside a rate-limited
//                    background scrubber
//   ppm_cli scrub    --code <family> [params]      continuous-scrub campaign:
//                    [--stripes N] [--epochs E] [--seed S]   seeded latent-
//                    [--permanent P] [--corrupt P]   error arrivals, sweep +
//                    [--rate-kbps K] [--retries N] [--spot-every N]  risk-
//                    [--dir <journal>] [--drill 1] [--metrics 1]   ranked
//                    repair + crash-consistent journal (see ROBUSTNESS.md)
//   ppm_cli search {certify|best|ls|check|gc}      coefficient certification:
//                    [--n N --r R --m M --s S --w W]   exhaustively prove a
//                    [--coeffs a,b,...] [--dir <d>]    tuple (certify), search
//                    [--candidates N] [--certify-budget N] [--seed S]  for the
//                    [--plan-budget N] [--exact-limit N] [--classes N] Pareto-
//                    [--allow-deficient 1] [--metrics 1]   best one (best), or
//                    re-prove/list/gc the persistent certificate store
//
// Families and their parameters (defaults in parentheses):
//   sd, pmds : --n (8) --r (16) --m (2) --s (2) [--w auto] [--z 1]
//   lrc      : --k (12) --l (3) --g (2)
//   xorbas   : --k (10) --l (2) --g (4)
//   rs       : --k (10) --m (4)
//   crs      : --k (10) --m (4)
//   evenodd, rdp, star : --p (7)
// Common: --block <bytes> (65536), --reps (5), --threads (4), --faults
// (family worst case) — number of whole-disk failures for the generic
// generator.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <map>
#include <memory>
#include <numeric>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "ppm.h"

using namespace ppm;

namespace {

struct Args {
  std::string command;
  std::string subcommand;  // e.g. "build" in `ppm_cli store build ...`
  std::map<std::string, std::string> flags;

  std::size_t get(const std::string& key, std::size_t fallback) const {
    const auto it = flags.find(key);
    if (it == flags.end()) return fallback;
    return std::strtoull(it->second.c_str(), nullptr, 10);
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = flags.find(key);
    return it == flags.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  int first_flag = 2;
  if (argc > 2 && argv[2][0] != '-') {
    args.subcommand = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i + 1 < argc; i += 2) {
    const char* key = argv[i];
    if (key[0] == '-' && key[1] == '-') {
      args.flags[key + 2] = argv[i + 1];
    }
  }
  return args;
}

std::unique_ptr<ErasureCode> make_code(const Args& args) {
  const std::string family = args.get("code", "sd");
  if (family == "sd" || family == "pmds") {
    const std::size_t n = args.get("n", 8);
    const std::size_t r = args.get("r", 16);
    const std::size_t m = args.get("m", 2);
    const std::size_t s = args.get("s", 2);
    const unsigned w = static_cast<unsigned>(
        args.get("w", SDCode::recommended_width(n, r)));
    if (family == "sd") return std::make_unique<SDCode>(n, r, m, s, w);
    return std::make_unique<PMDSCode>(n, r, m, s, w);
  }
  if (family == "lrc") {
    return std::make_unique<LRCCode>(args.get("k", 12), args.get("l", 3),
                                     args.get("g", 2), 8);
  }
  if (family == "xorbas") {
    return std::make_unique<XorbasLRCCode>(args.get("k", 10),
                                           args.get("l", 2),
                                           args.get("g", 4), 8);
  }
  if (family == "rs") {
    return std::make_unique<RSCode>(args.get("k", 10), args.get("m", 4), 8);
  }
  if (family == "crs") {
    return std::make_unique<CRSCode>(args.get("k", 10), args.get("m", 4), 8);
  }
  if (family == "star") {
    return std::make_unique<StarCode>(args.get("p", 7), 8);
  }
  if (family == "evenodd") {
    return std::make_unique<EvenOddCode>(args.get("p", 7), 8);
  }
  if (family == "rdp") {
    return std::make_unique<RDPCode>(args.get("p", 7), 8);
  }
  throw std::invalid_argument("unknown --code family: " + family);
}

// Family-appropriate worst-case (or --faults whole disks) scenario.
FailureScenario make_scenario(const ErasureCode& code, const Args& args,
                              ScenarioGenerator& gen) {
  const std::string family = args.get("code", "sd");
  if (args.flags.contains("faults")) {
    return gen.disk_failures(code, args.get("faults", 1)).scenario;
  }
  if (family == "sd" || family == "pmds") {
    return gen
        .sd_worst_case(code, args.get("m", 2), args.get("s", 2),
                       args.get("z", 1))
        .scenario;
  }
  if (family == "lrc") {
    const auto& lrc = dynamic_cast<const LRCCode&>(code);
    return gen.lrc_failures(lrc, lrc.l(), 1).scenario;
  }
  if (family == "rs") {
    const auto& rs = dynamic_cast<const RSCode&>(code);
    return gen.rs_failures(rs, rs.m()).scenario;
  }
  // Generic fallback: tolerance-respecting whole-disk failures.
  const std::size_t disks = family == "crs" ? args.get("m", 4)
                            : family == "star" ? std::size_t{3}
                                               : std::size_t{2};  // evenodd/rdp
  return gen.disk_failures(code, std::min(disks, code.disks() - 1)).scenario;
}

int cmd_info(const ErasureCode& code) {
  const Matrix& h = code.parity_check();
  std::printf("code:          %s\n", code.name().c_str());
  std::printf("geometry:      %zu disks x %zu rows = %zu blocks\n",
              code.disks(), code.rows(), code.total_blocks());
  std::printf("data/parity:   %zu / %zu\n", code.data_block_count(),
              code.parity_blocks().size());
  std::printf("H:             %zu x %zu, %zu nonzeros (density %.3f)\n",
              h.rows(), h.cols(), h.nonzeros(),
              static_cast<double>(h.nonzeros()) / (h.rows() * h.cols()));
  std::printf("field:         GF(2^%u)\n", code.field().w());
  std::printf("check rank:    %zu\n", h.rank());
  // Parity arity census — symmetric vs asymmetric at a glance.
  std::map<std::size_t, std::size_t> arity;
  for (std::size_t row = 0; row < h.rows(); ++row) {
    std::size_t nz = 0;
    for (std::size_t c = 0; c < h.cols(); ++c) nz += (h(row, c) != 0);
    ++arity[nz];
  }
  std::printf("row arities:  ");
  for (const auto& [a, count] : arity) std::printf(" %zux%zu", count, a);
  std::printf("  -> %s parity\n",
              arity.size() > 1 ? "ASYMMETRIC" : "symmetric");
  return 0;
}

int cmd_costs(const ErasureCode& code, const Args& args) {
  ScenarioGenerator gen(args.get("seed", 1));
  const FailureScenario sc = make_scenario(code, args, gen);
  std::printf("scenario: %zu faulty blocks\n", sc.count());
  const auto costs = analyze_costs(code, sc);
  if (!costs) {
    std::fprintf(stderr, "scenario undecodable\n");
    return 1;
  }
  std::printf("C1=%zu C2=%zu C3=%zu C4=%zu  p=%zu  ppm=%zu (%.2f%% below "
              "C1)\n",
              costs->c1, costs->c2, costs->c3, costs->c4, costs->p,
              costs->ppm_best(),
              100.0 * (costs->c1 - costs->ppm_best()) / costs->c1);
  return 0;
}

int cmd_bench(const ErasureCode& code, const Args& args) {
  const std::size_t block = args.get("block", 65536);
  const std::size_t reps = args.get("reps", 5);
  ScenarioGenerator gen(args.get("seed", 1));
  const FailureScenario sc = make_scenario(code, args, gen);

  Stripe stripe(code, block);
  Rng rng(args.get("seed", 1) + 1);
  stripe.fill_data(rng);
  const TraditionalDecoder trad(code);
  if (!trad.encode(stripe.block_ptrs(), block)) return 1;
  const auto snap = stripe.snapshot();

  PpmOptions opts;
  opts.threads = static_cast<unsigned>(args.get("threads", 4));
  const PpmDecoder ppm_dec(code, opts);

  stripe.erase(sc);  // warm-up
  if (!trad.decode(sc, stripe.block_ptrs(), block)) return 1;

  std::vector<double> tt;
  std::vector<double> tp;
  std::vector<double> tmodel;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    stripe.erase(sc);
    const auto tr = trad.decode(sc, stripe.block_ptrs(), block);
    if (!tr) return 1;
    tt.push_back(tr->seconds);
    stripe.erase(sc);
    const auto pr = ppm_dec.decode(sc, stripe.block_ptrs(), block);
    if (!pr) return 1;
    tp.push_back(pr->seconds);
    tmodel.push_back(pr->modeled_seconds());
  }
  if (!stripe.equals(snap)) {
    std::fprintf(stderr, "VERIFICATION FAILED\n");
    return 1;
  }
  std::sort(tt.begin(), tt.end());
  std::sort(tp.begin(), tp.end());
  std::sort(tmodel.begin(), tmodel.end());
  const double t1 = tt[tt.size() / 2];
  const double t2 = tp[tp.size() / 2];
  const double t3 = tmodel[tmodel.size() / 2];
  std::printf("traditional: %8.3f ms\n", t1 * 1e3);
  std::printf("PPM (wall):  %8.3f ms  (%+.2f%%)\n", t2 * 1e3,
              100 * (t1 / t2 - 1));
  std::printf("PPM (model): %8.3f ms  (%+.2f%%, %zu threads)\n", t3 * 1e3,
              100 * (t1 / t3 - 1), args.get("threads", 4));
  return 0;
}

// Batch decode through the Codec (the disk-rebuild serving path) and emit
// the codec's metrics as one JSON object on stdout — plan-cache hits /
// misses / evictions, mult_XOR volume, and latency histograms.
int cmd_batch(const ErasureCode& code, const Args& args) {
  const std::size_t block = args.get("block", 65536);
  const std::size_t batch = args.get("stripes", 64);
  ScenarioGenerator gen(args.get("seed", 1));
  const FailureScenario sc = make_scenario(code, args, gen);

  const TraditionalDecoder trad(code);
  std::vector<std::unique_ptr<Stripe>> stripes;
  std::vector<std::vector<std::uint8_t>> snaps;
  std::vector<std::uint8_t* const*> ptrs;
  Rng rng(args.get("seed", 1) + 3);
  for (std::size_t i = 0; i < batch; ++i) {
    stripes.push_back(std::make_unique<Stripe>(code, block));
    stripes.back()->fill_data(rng);
    if (!trad.encode(stripes.back()->block_ptrs(), block)) return 1;
    snaps.push_back(stripes.back()->snapshot());
    stripes.back()->erase(sc);
    ptrs.push_back(stripes.back()->block_ptrs());
  }

  Codec::Options copts;
  copts.threads = static_cast<unsigned>(args.get("threads", 4));
  copts.cache_capacity = args.get("capacity", 64);
  copts.cache_shards = args.get("shards", 0);
  Codec codec(code, copts);
  const auto result = codec.decode_batch(sc, ptrs, block);
  if (!result.has_value()) {
    std::fprintf(stderr, "scenario undecodable\n");
    return 1;
  }
  for (std::size_t i = 0; i < batch; ++i) {
    if (!stripes[i]->equals(snaps[i])) {
      std::fprintf(stderr, "VERIFICATION FAILED: stripe %zu\n", i);
      return 1;
    }
  }
  std::fprintf(stderr,
               "%zu stripes x %zuKiB decoded in %.3f ms (plan %.3f ms, "
               "%u threads, cache %zu/%zu in %zu shards)\n",
               result->stripes, block / 1024, result->seconds * 1e3,
               result->plan_seconds * 1e3, copts.threads, codec.cache_size(),
               codec.cache_capacity(), codec.cache_shards());
  std::printf("%s\n", codec.metrics_json().c_str());
  return 0;
}

int cmd_sim(const ErasureCode& code, const Args& args) {
  SimParams params;
  params.hours = static_cast<double>(args.get("hours", 24 * 365));
  params.disk_mtbf_hours =
      static_cast<double>(args.get("mtbf", 20000));
  params.sector_errors_per_disk_hour =
      1.0 / static_cast<double>(args.get("sector_mtbh", 5000));
  params.repair_hours = static_cast<double>(args.get("repair", 8));
  params.stripes = args.get("stripes", 256);
  params.block_bytes = args.get("block", 8192);
  params.seed = args.get("seed", 1);

  const ArraySimulator sim(code, params);
  const SimResult trad = sim.run(RepairPolicy::kTraditional);
  const SimResult ppm = sim.run(RepairPolicy::kPpm);
  std::printf("%s over %.0f hours: %zu disk failures, %zu sector errors, "
              "%zu repairs, %zu loss events\n",
              code.name().c_str(), params.hours, trad.disk_failures,
              trad.sector_errors, trad.repair_events, trad.data_loss_events);
  std::printf("repair mult_XORs: traditional %zu, PPM %zu (%.2f%% saved)\n",
              trad.compute.mult_xors, ppm.compute.mult_xors,
              trad.compute.mult_xors == 0
                  ? 0.0
                  : 100.0 *
                        (static_cast<double>(trad.compute.mult_xors) -
                         static_cast<double>(ppm.compute.mult_xors)) /
                        static_cast<double>(trad.compute.mult_xors));
  return 0;
}

// Parse "1,5,9" into a scenario.
FailureScenario parse_scenario_spec(const std::string& spec) {
  std::vector<std::size_t> faulty;
  const char* p = spec.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    faulty.push_back(std::strtoull(p, &end, 10));
    if (end == p) throw std::invalid_argument("bad --scenario: " + spec);
    p = *end == ',' ? end + 1 : end;
  }
  return FailureScenario(faulty);
}

// Statically verify the plan for one scenario: the planverify pass over
// the cached plan, plus — for every sub-plan whose applied matrix is
// binary — an incremental XOR schedule planned and symbolically replayed.
// Returns all violations found (empty = sound).
std::vector<planverify::Violation> verify_one(Codec& codec,
                                              const ErasureCode& code,
                                              const FailureScenario& sc,
                                              bool* undecodable,
                                              std::size_t* schedules) {
  *undecodable = false;
  const auto plan = codec.plan_for(sc);
  if (plan == nullptr) {
    *undecodable = true;
    return {};
  }
  auto verdict = planverify::verify_plan(code, sc, *plan);
  const auto check_schedule = [&](const SubPlan& sub) {
    const Matrix& applied =
        sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
    const auto sched = plan_xor_schedule(applied);
    if (!sched.has_value()) return;  // non-binary system: no XOR schedule
    ++*schedules;
    auto xv = planverify::verify_xor_schedule(applied, *sched);
    verdict.violations.insert(verdict.violations.end(),
                              xv.violations.begin(), xv.violations.end());
  };
  for (const SubPlan& sub : plan->groups()) check_schedule(sub);
  if (plan->rest().has_value()) check_schedule(*plan->rest());
  return std::move(verdict.violations);
}

// Drive `run_one` over the scenario selection shared by `verify` and
// `analyze`: an explicit --scenario, every combination of up to --sweep
// whole-disk failures, or the family worst case.
template <typename Fn>
void for_each_selected_scenario(const ErasureCode& code, const Args& args,
                                const Fn& run_one) {
  if (args.flags.contains("sweep")) {
    // Every combination of 1..sweep failed disks (each disk failure
    // erases that disk's blocks in every row of the stripe).
    const std::size_t max_disks =
        std::min(args.get("sweep", 1), code.disks());
    std::vector<std::size_t> combo;
    const auto recurse = [&](auto&& self, std::size_t next,
                             std::size_t remaining) -> void {
      if (remaining == 0) {
        std::vector<std::size_t> faulty;
        for (const std::size_t d : combo) {
          for (std::size_t row = 0; row < code.rows(); ++row) {
            faulty.push_back(code.block_id(row, d));
          }
        }
        run_one(FailureScenario(faulty));
        return;
      }
      for (std::size_t d = next; d + remaining <= code.disks(); ++d) {
        combo.push_back(d);
        self(self, d + 1, remaining - 1);
        combo.pop_back();
      }
    };
    for (std::size_t k = 1; k <= max_disks; ++k) recurse(recurse, 0, k);
  } else if (args.flags.contains("scenario")) {
    run_one(parse_scenario_spec(args.get("scenario", std::string{})));
  } else {
    ScenarioGenerator gen(args.get("seed", 1));
    run_one(make_scenario(code, args, gen));
  }
}

std::string scenario_ids(const FailureScenario& sc) {
  std::string ids;
  for (const std::size_t b : sc.faulty()) {
    ids += (ids.empty() ? "" : ",") + std::to_string(b);
  }
  return ids;
}

// Offline plan-space vetting for operators: verify the plan of one
// scenario (--scenario or the family default), or of every combination of
// up to --sweep whole-disk failures. Pass/fail report on stderr; the
// Violation list as JSON on stdout when verification fails.
int cmd_verify(const ErasureCode& code, const Args& args) {
  Codec codec(code);
  std::size_t checked = 0;
  std::size_t undecodable_count = 0;
  std::size_t schedules = 0;
  std::vector<planverify::Violation> violations;

  for_each_selected_scenario(code, args, [&](const FailureScenario& sc) {
    bool undecodable = false;
    auto v = verify_one(codec, code, sc, &undecodable, &schedules);
    ++checked;
    if (undecodable) {
      ++undecodable_count;
      return;
    }
    if (!v.empty()) {
      std::fprintf(stderr, "FAIL: scenario [%s]: %zu violation(s)\n",
                   scenario_ids(sc).c_str(), v.size());
      violations.insert(violations.end(), v.begin(), v.end());
    }
  });

  std::fprintf(stderr,
               "%s: %zu scenario(s) verified (%zu undecodable skipped), "
               "%zu XOR schedule(s) replayed\n",
               code.name().c_str(), checked - undecodable_count,
               undecodable_count, schedules);
  if (!violations.empty()) {
    std::printf("%s\n", planverify::to_json(violations).c_str());
    std::fprintf(stderr, "FAIL: %zu violation(s)\n", violations.size());
    return 1;
  }
  if (checked == undecodable_count && checked > 0 &&
      !args.flags.contains("sweep")) {
    std::fprintf(stderr, "FAIL: scenario undecodable\n");
    return 2;
  }
  std::fprintf(stderr, "PASS\n");
  return 0;
}

// Static concurrency-hazard analysis: prove every parallel region the
// decoders would run for a scenario race-free under all interleavings and
// report the plan's parallelism profile (critical path, per-level width,
// max-speedup bound). Covers the PPM group fan-out (analyze_plan), every
// binary sub-system's XOR schedule as a parallel program over target
// units (analyze_schedule), and the region-split slice geometry the
// BlockParallelDecoder would use for --block/--threads (analyze_slices).
// With --optimize 1, the proof-carrying superoptimizer (ppm::xoropt) runs
// over every binary sub-system: the codec builds plans with the
// optimize_xor knob, the CLI re-proves each optimized schedule
// independently, and the sweep JSON gains naive/greedy/optimized op
// totals plus accept/reject counts. Profile JSON on stdout; violations
// JSON on stdout with exit 1.
int cmd_analyze(const ErasureCode& code, const Args& args) {
  const bool optimize = args.get("optimize", 0) != 0;
  Codec::Options codec_options;
  codec_options.optimize_xor = optimize;
  Codec codec(code, codec_options);
  const std::size_t block = args.get("block", 65536);
  const unsigned threads = static_cast<unsigned>(args.get("threads", 4));
  const unsigned sym = code.field().symbol_bytes();
  const Matrix& h = code.parity_check();

  std::size_t checked = 0;
  std::size_t undecodable_count = 0;
  std::size_t schedules = 0;
  std::size_t slice_sets = 0;
  std::size_t work_sum = 0;
  std::size_t critical_sum = 0;
  std::size_t placed_sum = 0;      // LPT makespan on --threads lanes
  std::size_t roundrobin_sum = 0;  // Algorithm-1 makespan, same lanes
  std::size_t max_width = 0;
  double best_speedup = 1.0;
  std::size_t opt_naive_sum = 0;      // Σ u(M) over optimized sub-systems
  std::size_t opt_greedy_sum = 0;     // Σ greedy schedule cost, same
  std::size_t opt_optimized_sum = 0;  // Σ proven optimized cost, same
  std::size_t opt_accepted = 0;
  std::size_t opt_rejected = 0;
  std::size_t opt_below_naive = 0;  // schedules strictly under u(M)
  std::string profile_json;  // per-scenario profile (last scenario wins)
  std::vector<planverify::Violation> violations;

  for_each_selected_scenario(code, args, [&](const FailureScenario& sc) {
    ++checked;
    const auto plan = codec.plan_for(sc);
    if (plan == nullptr) {
      ++undecodable_count;
      return;
    }
    const auto take = [&](const hazard::Analysis& a, const char* what) {
      if (!a.ok()) {
        std::fprintf(stderr, "FAIL: scenario [%s] %s: %zu violation(s)\n",
                     scenario_ids(sc).c_str(), what, a.violations.size());
        violations.insert(violations.end(), a.violations.begin(),
                          a.violations.end());
      }
    };

    // 1. The PPM group fan-out: every plan carries its hazard/cost
    //    profile from birth (Codec::build_plan analyzes it once), so read
    //    profile() instead of re-running the analyzer; only a hazardous
    //    plan is re-analyzed, to recover the violation details.
    const PlanProfile& prof = plan->profile();
    if (!prof.hazard_free) take(hazard::analyze_plan(*plan), "plan");
    work_sum += prof.work;
    critical_sum += prof.critical_path;
    max_width = std::max(max_width, prof.max_width);
    best_speedup = std::max(best_speedup, prof.speedup_bound());

    // Placement the executor would run on --threads lanes, vs. the
    // Algorithm-1 baseline — both in exact mult_XOR units (group-phase
    // makespan + the rest tail that follows every lane).
    std::vector<std::size_t> group_work;
    group_work.reserve(plan->p());
    for (const SubPlan& sub : plan->groups()) {
      group_work.push_back(sub.cost());
    }
    const std::size_t rest_cost =
        plan->rest().has_value() ? plan->rest()->cost() : 0;
    const std::size_t placed =
        hazard::place_lpt(group_work, threads).makespan + rest_cost;
    const std::size_t roundrobin =
        hazard::place_round_robin(group_work, threads).makespan + rest_cost;
    placed_sum += placed;
    roundrobin_sum += roundrobin;

    // 2. Every binary sub-system's XOR schedule, as a parallel program.
    const auto check_schedule = [&](const SubPlan& sub) {
      const Matrix& applied =
          sub.sequence() == Sequence::kMatrixFirst ? sub.finv() : sub.s();
      const auto sched = plan_xor_schedule(applied);
      if (!sched.has_value()) return;  // non-binary system: no XOR schedule
      ++schedules;
      take(hazard::analyze_schedule(*sched, applied), "xor schedule");
      if (!optimize) return;
      // Superoptimize and re-prove from the CLI's side — independent of
      // the gate inside xoropt::optimize, so a bug in the accept path
      // cannot certify its own output.
      const auto result = xoropt::optimize(applied, *sched);
      opt_naive_sum += sched->naive_ops;
      opt_greedy_sum += sched->cost();
      opt_optimized_sum += result.schedule.cost();
      opt_accepted += result.stats.rewrites_accepted;
      opt_rejected += result.stats.rewrites_rejected;
      if (result.schedule.cost() < result.schedule.naive_ops) {
        ++opt_below_naive;
      }
      const auto proof = xoropt::prove(applied, result.schedule);
      if (!proof.empty()) {
        std::fprintf(stderr,
                     "FAIL: scenario [%s] optimized xor schedule: "
                     "%zu violation(s)\n",
                     scenario_ids(sc).c_str(), proof.size());
        violations.insert(violations.end(), proof.begin(), proof.end());
      }
    };
    for (const SubPlan& sub : plan->groups()) check_schedule(sub);
    if (plan->rest().has_value()) check_schedule(*plan->rest());

    // 3. The slice geometry BlockParallelDecoder would fan out.
    std::vector<std::size_t> all_rows(h.rows());
    std::iota(all_rows.begin(), all_rows.end(), 0);
    const auto whole = SubPlan::make(h, all_rows, sc.faulty(), sc.faulty(),
                                     Sequence::kMatrixFirst);
    if (whole.has_value()) {
      ++slice_sets;
      const auto ranges = plan_slices(block, sym, threads);
      take(hazard::analyze_slices(*whole, ranges, block, sym), "slices");
    }

    std::string widths;
    for (const std::size_t w : prof.level_width) {
      widths += (widths.empty() ? "" : ",") + std::to_string(w);
    }
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "{\"scenario\":[%s],\"units\":%zu,"
                  "\"work_mult_xors\":%zu,\"critical_path_mult_xors\":%zu,"
                  "\"level_width\":[%s],\"max_width\":%zu,"
                  "\"max_speedup_bound\":%.4f,\"lanes\":%u,"
                  "\"placed_makespan_mult_xors\":%zu,"
                  "\"roundrobin_makespan_mult_xors\":%zu}",
                  scenario_ids(sc).c_str(),
                  prof.level_width.empty()
                      ? std::size_t{0}
                      : std::accumulate(prof.level_width.begin(),
                                        prof.level_width.end(),
                                        std::size_t{0}),
                  prof.work, prof.critical_path, widths.c_str(),
                  prof.max_width, prof.speedup_bound(), threads, placed,
                  roundrobin);
    profile_json = buf;
    if (!args.flags.contains("sweep")) {
      std::fprintf(stderr,
                   "scenario [%s]: work=%zu critical_path=%zu "
                   "width=%zu speedup<=%.2f placed=%zu roundrobin=%zu "
                   "(T=%u)\n",
                   scenario_ids(sc).c_str(), prof.work, prof.critical_path,
                   prof.max_width, prof.speedup_bound(), placed, roundrobin,
                   threads);
    }
  });

  std::fprintf(stderr,
               "%s: %zu scenario(s) analyzed (%zu undecodable skipped), "
               "%zu XOR schedule(s), %zu slice fan-out(s)\n",
               code.name().c_str(), checked - undecodable_count,
               undecodable_count, schedules, slice_sets);
  if (optimize) {
    std::fprintf(stderr,
                 "xoropt: naive=%zu greedy=%zu optimized=%zu accepted=%zu "
                 "rejected=%zu below_naive=%zu\n",
                 opt_naive_sum, opt_greedy_sum, opt_optimized_sum,
                 opt_accepted, opt_rejected, opt_below_naive);
  }
  if (!violations.empty()) {
    std::printf("%s\n", planverify::to_json(violations).c_str());
    std::fprintf(stderr, "FAIL: %zu violation(s)\n", violations.size());
    return 1;
  }
  if (checked == undecodable_count && checked > 0 &&
      !args.flags.contains("sweep")) {
    std::fprintf(stderr, "FAIL: scenario undecodable\n");
    return 2;
  }
  if (args.flags.contains("sweep")) {
    std::string xoropt_json;
    if (optimize) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    ",\"xoropt\":{\"naive_ops\":%zu,\"greedy_ops\":%zu,"
                    "\"optimized_ops\":%zu,\"accepted\":%zu,"
                    "\"rejected\":%zu,\"below_naive\":%zu}",
                    opt_naive_sum, opt_greedy_sum, opt_optimized_sum,
                    opt_accepted, opt_rejected, opt_below_naive);
      xoropt_json = buf;
    }
    std::printf("{\"scenarios\":%zu,\"undecodable\":%zu,\"schedules\":%zu,"
                "\"work_mult_xors\":%zu,\"critical_path_mult_xors\":%zu,"
                "\"max_width\":%zu,\"best_speedup_bound\":%.4f,"
                "\"lanes\":%u,\"placed_makespan_mult_xors\":%zu,"
                "\"roundrobin_makespan_mult_xors\":%zu%s}\n",
                checked, undecodable_count, schedules, work_sum, critical_sum,
                max_width, best_speedup, threads, placed_sum, roundrobin_sum,
                xoropt_json.c_str());
  } else if (!profile_json.empty()) {
    std::printf("%s\n", profile_json.c_str());
  }
  std::fprintf(stderr, "PASS: hazard-free\n");
  return 0;
}

// Seeded chaos campaign against the resilient decode pipeline
// (docs/ROBUSTNESS.md):
//
//   ppm_cli chaos --code <family> [params] [--sweep N|--scenario 1,5]
//           [--seed S] [--rounds R] [--permanent P] [--transient P]
//           [--corrupt P] [--straggle P] [--retries N]
//
// For every selected scenario, `--rounds` independent fault campaigns are
// rolled from the seed (probabilities are percentages per survivor block)
// and decode_resilient runs against the faulted source with per-block CRC
// digests. Every run is then checked against an independent expectation:
//
//   * if the scenario plus every permanently unreadable survivor is still
//     decodable, the run must end complete and byte-identical;
//   * any incomplete run's recovered set must equal exactly the
//     independent O1 groups (and, when all groups solved, H_rest) whose
//     survivors are readable, and those blocks must be byte-identical.
//
// Outcome histogram JSON on stdout; exit 1 on any expectation failure.
// Deterministic from --seed: rerunning reproduces every fault and every
// outcome bit-for-bit.
int cmd_chaos(const ErasureCode& code, const Args& args) {
  const std::size_t block = args.get("block", 4096);
  const std::size_t rounds = args.get("rounds", 3);
  const std::size_t retries = args.get("retries", 3);
  io::FaultInjectingSource::CampaignOptions campaign;
  campaign.fail_permanent =
      static_cast<double>(args.get("permanent", 8)) / 100.0;
  campaign.fail_transient =
      static_cast<double>(args.get("transient", 12)) / 100.0;
  campaign.corrupt = static_cast<double>(args.get("corrupt", 8)) / 100.0;
  campaign.delay = static_cast<double>(args.get("straggle", 0)) / 100.0;
  campaign.delay_ns = std::chrono::microseconds{100};

  // One reference stripe: encode once, snapshot, digest per block.
  Stripe stripe(code, block);
  Rng fill_rng(args.get("seed", 1) + 17);
  stripe.fill_data(fill_rng);
  const TraditionalDecoder trad(code);
  if (!trad.encode(stripe.block_ptrs(), block)) return 1;
  const auto snap = stripe.snapshot();
  const std::size_t total = code.total_blocks();
  std::vector<const std::uint8_t*> backing(total);
  std::vector<std::uint32_t> digests(total);
  for (std::size_t b = 0; b < total; ++b) {
    backing[b] = snap.data() + b * block;
    digests[b] = crc32(backing[b], block);
  }
  const auto restore = [&] {
    for (std::size_t b = 0; b < total; ++b) {
      std::memcpy(stripe.block(b), backing[b], block);
    }
  };

  Codec codec(code);
  ResilienceOptions ropt;
  ropt.max_read_retries = retries;
  Rng rng(args.get("seed", 1));

  std::size_t runs = 0;
  std::size_t complete = 0;
  std::size_t partial = 0;
  std::size_t none = 0;  // incomplete with nothing recovered
  std::size_t verify_failures = 0;
  std::size_t retries_sum = 0;
  std::size_t escalations_sum = 0;
  std::size_t corruption_sum = 0;
  std::size_t failures_injected = 0;
  std::size_t corruptions_injected = 0;

  const auto mirror_partial_expectation =
      [&](const FailureScenario& final_sc,
          const io::FaultInjectingSource& source) {
        // Independent recomputation of what partial recovery must achieve:
        // walk the O1 decomposition of the final faulty set and keep every
        // group whose system is solvable and whose survivors the fault
        // schedule lets through; H_rest joins only once every group did.
        const Matrix& h = code.parity_check();
        const LogTable table = LogTable::build(h, final_sc.faulty());
        const Partition part = make_partition(h, table);
        std::vector<std::size_t> expected;
        const auto readable = [&](std::span<const std::size_t> survivors) {
          for (const std::size_t s : survivors) {
            if (std::binary_search(expected.begin(), expected.end(), s)) {
              continue;  // recovered by an earlier group: in-buffer
            }
            if (source.fault(s).permanently_unreadable(retries)) return false;
          }
          return true;
        };
        for (const IndependentGroup& g : part.groups) {
          const auto sub = SubPlan::make(h, g.rows, g.faulty_cols,
                                         final_sc.faulty(),
                                         Sequence::kMatrixFirst);
          if (!sub.has_value() || !readable(sub->survivors())) continue;
          for (const std::size_t b : g.faulty_cols) {
            expected.insert(
                std::upper_bound(expected.begin(), expected.end(), b), b);
          }
        }
        if (!part.rest_empty() &&
            expected.size() + part.rest_faulty.size() ==
                final_sc.count()) {
          const auto sub = SubPlan::make(h, part.rest_rows, part.rest_faulty,
                                         part.rest_faulty,
                                         Sequence::kMatrixFirst);
          if (sub.has_value() && readable(sub->survivors())) {
            for (const std::size_t b : part.rest_faulty) {
              expected.insert(
                  std::upper_bound(expected.begin(), expected.end(), b), b);
            }
          }
        }
        return expected;
      };

  for_each_selected_scenario(code, args, [&](const FailureScenario& sc) {
    for (std::size_t round = 0; round < rounds; ++round) {
      restore();
      stripe.erase(sc);
      io::MemoryBlockSource inner(backing.data(), total, block);
      io::FaultInjectingSource source(inner);
      const std::vector<std::size_t> exempt(sc.faulty().begin(),
                                            sc.faulty().end());
      source.roll_campaign(campaign, rng, exempt);

      const auto out = codec.decode_resilient(sc, source, stripe.block_ptrs(),
                                              block, ropt, digests);
      ++runs;
      retries_sum += out.retries;
      escalations_sum += out.escalations;
      corruption_sum += out.corruption_detected;
      failures_injected += source.failures_injected();
      corruptions_injected += source.corruptions_injected();

      const auto flag = [&](const char* what) {
        ++verify_failures;
        std::fprintf(stderr, "VERIFY FAIL: scenario [%s] round %zu: %s\n",
                     scenario_ids(sc).c_str(), round, what);
      };

      // Worst-case escalated set: the scenario plus every survivor the
      // schedule makes permanently unreadable under this retry budget.
      std::vector<std::size_t> worst(sc.faulty().begin(), sc.faulty().end());
      for (std::size_t b = 0; b < total; ++b) {
        if (!sc.contains(b) &&
            source.fault(b).permanently_unreadable(retries)) {
          worst.push_back(b);
        }
      }
      const FailureScenario worst_sc(worst);
      const bool worst_decodable =
          worst_sc.count() <= code.check_rows() &&
          codec.plan_for(worst_sc) != nullptr;

      if (out.complete) {
        ++complete;
        if (!stripe.equals(snap)) flag("complete but not byte-identical");
        const auto final_faulty = out.final_scenario.faulty();
        if (out.recovered !=
            std::vector<std::size_t>(final_faulty.begin(),
                                     final_faulty.end())) {
          flag("complete but recovered != final faulty set");
        }
      } else {
        if (worst_decodable) {
          flag("within-capability scenario did not recover completely");
        }
        const auto expected =
            mirror_partial_expectation(out.final_scenario, source);
        if (out.recovered != expected) {
          flag("recovered set != independent groups with intact inputs");
        }
        if (!stripe.blocks_equal(snap, out.recovered)) {
          flag("partially recovered blocks not byte-identical");
        }
        ++(out.recovered.empty() ? none : partial);
      }
    }
  });

  std::fprintf(stderr,
               "%s: %zu chaos run(s): %zu complete, %zu partial, %zu "
               "unrecovered, %zu verify failure(s)\n",
               code.name().c_str(), runs, complete, partial, none,
               verify_failures);
  std::printf(
      "{\"code\":\"%s\",\"runs\":%zu,\"outcomes\":{\"complete\":%zu,"
      "\"partial\":%zu,\"none\":%zu},\"verify_failures\":%zu,"
      "\"retries\":%zu,\"escalations\":%zu,\"corruption_detected\":%zu,"
      "\"injected\":{\"read_failures\":%zu,\"corruptions\":%zu}}\n",
      code.name().c_str(), runs, complete, partial, none, verify_failures,
      retries_sum, escalations_sum, corruption_sum, failures_injected,
      corruptions_injected);
  return verify_failures == 0 ? 0 : 1;
}

// Serving campaign (docs/SERVING.md): drive the DecodeServer +
// decode_overlapped front end over the selected scenarios in three
// phases — clean source, seeded transient stragglers with hedging, and
// (--serial 1) the serial decode_resilient baseline on the *same*
// straggler schedules — verifying byte-identity on every request and
// reporting per-phase latency histograms (p50/p99/p999) plus hedge,
// fallback and overlap counters as one JSON object on stdout.
//
// CI contract: exits 1 on any verify failure; with --assert-ratio R
// additionally requires hedged p99 <= max(R% of clean p99,
// --assert-floor-us) and, when the serial phase ran, hedged p99 strictly
// below serial p99.
int cmd_serve(const ErasureCode& code, const Args& args) {
  const std::size_t block = args.get("block", 4096);
  const std::size_t rounds = args.get("rounds", 2);
  const std::size_t per_scenario = std::max<std::size_t>(
      1, args.get("requests", 4));
  const std::size_t retries = args.get("retries", 3);
  const double straggle =
      static_cast<double>(args.get("straggle", 25)) / 100.0;
  const std::chrono::microseconds delay{args.get("delay-us", 3000)};
  const bool run_serial = args.get("serial", 1) != 0;
  const std::size_t assert_ratio = args.get("assert-ratio", 0);  // percent
  const std::size_t assert_floor_us = args.get("assert-floor-us", 2000);
  const std::uint64_t seed = args.get("seed", 1);

  // One reference stripe: encode once, snapshot, digest per block.
  Stripe reference(code, block);
  Rng fill_rng(seed + 17);
  reference.fill_data(fill_rng);
  const TraditionalDecoder trad(code);
  if (!trad.encode(reference.block_ptrs(), block)) return 1;
  const auto snap = reference.snapshot();
  const std::size_t total = code.total_blocks();
  std::vector<const std::uint8_t*> backing(total);
  std::vector<std::uint32_t> digests(total);
  for (std::size_t b = 0; b < total; ++b) {
    backing[b] = snap.data() + b * block;
    digests[b] = crc32(backing[b], block);
  }

  std::vector<FailureScenario> scenarios;
  for_each_selected_scenario(
      code, args, [&](const FailureScenario& sc) { scenarios.push_back(sc); });

  Codec codec(code);
  io::FaultInjectingSource::CampaignOptions campaign;
  campaign.delay = straggle;
  campaign.delay_ns = delay;
  campaign.delay_attempts = 1;  // transient stragglers: duplicates are fast

  serve::ServerOptions sopts;
  sopts.queue_depth = args.get("queue", 64);
  sopts.dispatchers = static_cast<unsigned>(args.get("dispatchers", 2));
  sopts.overlap.reactor_threads =
      static_cast<unsigned>(args.get("reactors", 32));
  sopts.overlap.resilience.max_read_retries = retries;

  struct PhaseStats {
    LatencyHistogram latency;  ///< per-request decode wall time
    std::size_t requests = 0;
    std::size_t rejected = 0;
    std::size_t verify_failures = 0;
    std::size_t fallbacks = 0;
    std::size_t overlapped = 0;  ///< solves started before last read
    std::size_t hedges_launched = 0;
    std::size_t hedges_won = 0;
    std::size_t hedges_wasted = 0;
  };

  const auto flag = [](PhaseStats& st, const char* phase,
                       const FailureScenario& sc, const char* what) {
    ++st.verify_failures;
    std::fprintf(stderr, "VERIFY FAIL: %s phase, scenario [%s]: %s\n", phase,
                 scenario_ids(sc).c_str(), what);
  };

  // One served phase: per scenario and round, `per_scenario` concurrent
  // requests (same plan key — the server batches them) over per-request
  // fault-injecting sources rolled from one seeded stream.
  const auto run_served = [&](bool inject, const char* name, PhaseStats& st,
                              std::uint64_t phase_seed) {
    Rng rng(phase_seed);
    serve::DecodeServer server(codec, sopts);
    for (std::size_t round = 0; round < rounds; ++round) {
      for (const FailureScenario& sc : scenarios) {
        const std::vector<std::size_t> exempt(sc.faulty().begin(),
                                              sc.faulty().end());
        std::vector<std::unique_ptr<Stripe>> stripes;
        std::vector<std::unique_ptr<io::MemoryBlockSource>> inners;
        std::vector<std::unique_ptr<io::FaultInjectingSource>> sources;
        std::vector<std::optional<std::future<serve::OverlapResult>>> futures;
        for (std::size_t k = 0; k < per_scenario; ++k) {
          auto stripe = std::make_unique<Stripe>(code, block);
          for (std::size_t b = 0; b < total; ++b) {
            std::memcpy(stripe->block(b), backing[b], block);
          }
          stripe->erase(sc);
          auto inner = std::make_unique<io::MemoryBlockSource>(
              backing.data(), total, block);
          auto source =
              std::make_unique<io::FaultInjectingSource>(*inner);
          if (inject) source->roll_campaign(campaign, rng, exempt);
          serve::ServeRequest req;
          req.scenario = sc;
          req.source = source.get();
          req.blocks = stripe->block_ptrs();
          req.block_bytes = block;
          req.expected_crc = digests;
          ++st.requests;
          futures.push_back(server.submit(std::move(req)));
          stripes.push_back(std::move(stripe));
          inners.push_back(std::move(inner));
          sources.push_back(std::move(source));
        }
        for (std::size_t k = 0; k < per_scenario; ++k) {
          if (!futures[k].has_value()) {
            ++st.rejected;
            continue;
          }
          const serve::OverlapResult out = futures[k]->get();
          st.latency.record_nanos(static_cast<std::uint64_t>(out.total_ns));
          st.fallbacks += out.fallback ? 1 : 0;
          st.overlapped += out.overlapped ? 1 : 0;
          st.hedges_launched += out.hedges_launched;
          st.hedges_won += out.hedges_won;
          st.hedges_wasted += out.hedges_wasted;
          if (!out.complete) flag(st, name, sc, "request did not complete");
          if (!stripes[k]->equals(snap)) {
            flag(st, name, sc, "decoded stripe not byte-identical");
          }
        }
      }
    }
    server.shutdown();
  };

  // Optional background scrubber (--scrub-rate-kbps): a token-bucket
  // rate-limited Scrubber patrols its own small fleet for the whole
  // campaign, continuously finding and repairing planted corruption.
  // It shares the process (allocator, caches, cores) with the serving
  // path — the p99 ratio gate below then proves a paced scrub does not
  // break the serving SLO.
  const double scrub_rate_kbps =
      static_cast<double>(args.get("scrub-rate-kbps", 0));
  std::vector<std::unique_ptr<Stripe>> scrub_storage;
  std::vector<std::unique_ptr<Stripe>> scrub_scratch;
  std::vector<std::unique_ptr<io::MemoryBlockStore>> scrub_stores;
  std::vector<std::unique_ptr<io::FaultInjectingSource>> scrub_seams;
  std::optional<Codec> scrub_codec;
  std::optional<scrub::Scrubber> scrubber;
  std::atomic<bool> scrub_stop{false};
  std::size_t scrub_cycles = 0;
  std::thread scrub_thread;
  if (scrub_rate_kbps > 0.0) {
    scrub_codec.emplace(code);  // own plan cache: don't pollute serving's
    scrub::ScrubOptions scrub_opt;
    scrub_opt.rate_bytes_per_sec = scrub_rate_kbps * 1024.0;
    scrub_opt.sweep_read_retries = retries;
    scrub_opt.repair.max_read_retries = retries;
    scrubber.emplace(*scrub_codec, scrub_opt);
    for (std::size_t i = 0; i < 2; ++i) {
      auto storage = std::make_unique<Stripe>(code, block);
      for (std::size_t b = 0; b < total; ++b) {
        std::memcpy(storage->block(b), backing[b], block);
      }
      auto store = std::make_unique<io::MemoryBlockStore>(
          storage->block_ptrs(), total, block);
      auto seam = std::make_unique<io::FaultInjectingSource>(*store, *store);
      scrub::ScrubTarget target;
      target.source = seam.get();
      target.writer = seam.get();
      scrub_scratch.push_back(std::make_unique<Stripe>(code, block));
      target.blocks = scrub_scratch.back()->block_ptrs();
      target.expected_crc = digests;
      target.stripe_id = "serve-scrub-" + std::to_string(i);
      scrubber->add_target(std::move(target));
      scrub_storage.push_back(std::move(storage));
      scrub_stores.push_back(std::move(store));
      scrub_seams.push_back(std::move(seam));
    }
    scrub_thread = std::thread([&] {
      std::size_t iter = 0;
      while (!scrub_stop.load(std::memory_order_relaxed)) {
        // Plant a fresh silent corruption each cycle; only this thread
        // touches these seams, so set_fault/run_cycle never race.
        io::FaultSpec rot;
        rot.corrupt = true;
        rot.corrupt_offset = iter % block;
        rot.corrupt_bytes = 4;
        scrub_seams[iter % scrub_seams.size()]->set_fault(iter % total, rot);
        scrubber->run_cycle();
        ++scrub_cycles;
        ++iter;
      }
    });
  }

  PhaseStats clean;
  PhaseStats hedged;
  PhaseStats serial;
  run_served(false, "clean", clean, seed);
  run_served(true, "hedged", hedged, seed + 1000);

  if (run_serial) {
    // The serial baseline replays the hedged phase's exact straggler
    // schedules (same seed stream) through decode_resilient.
    Rng rng(seed + 1000);
    ResilienceOptions ropt;
    ropt.max_read_retries = retries;
    for (std::size_t round = 0; round < rounds; ++round) {
      for (const FailureScenario& sc : scenarios) {
        const std::vector<std::size_t> exempt(sc.faulty().begin(),
                                              sc.faulty().end());
        for (std::size_t k = 0; k < per_scenario; ++k) {
          Stripe stripe(code, block);
          for (std::size_t b = 0; b < total; ++b) {
            std::memcpy(stripe.block(b), backing[b], block);
          }
          stripe.erase(sc);
          io::MemoryBlockSource inner(backing.data(), total, block);
          io::FaultInjectingSource source(inner);
          source.roll_campaign(campaign, rng, exempt);
          ++serial.requests;
          const Timer timer;
          const auto out = codec.decode_resilient(
              sc, source, stripe.block_ptrs(), block, ropt, digests);
          serial.latency.record_nanos(
              static_cast<std::uint64_t>(timer.nanos()));
          if (!out.complete) flag(serial, "serial", sc, "incomplete");
          if (!stripe.equals(snap)) {
            flag(serial, "serial", sc, "decoded stripe not byte-identical");
          }
        }
      }
    }
  }

  if (scrub_thread.joinable()) {
    scrub_stop.store(true, std::memory_order_relaxed);
    scrub_thread.join();
    std::fprintf(stderr,
                 "%s: background scrub: %zu cycle(s) at %.0f KiB/s beside "
                 "the serving campaign\n",
                 code.name().c_str(), scrub_cycles, scrub_rate_kbps);
  }

  const std::size_t verify_failures = clean.verify_failures +
                                      hedged.verify_failures +
                                      serial.verify_failures;
  const auto phase_json = [](std::string& out, const char* name,
                             const PhaseStats& st) {
    out += "\"";
    out += name;
    out += "\":{\"requests\":" + std::to_string(st.requests);
    out += ",\"rejected\":" + std::to_string(st.rejected);
    out += ",\"verify_failures\":" + std::to_string(st.verify_failures);
    out += ",\"fallbacks\":" + std::to_string(st.fallbacks);
    out += ",\"overlapped\":" + std::to_string(st.overlapped);
    out += ",\"hedges\":{\"launched\":" + std::to_string(st.hedges_launched);
    out += ",\"won\":" + std::to_string(st.hedges_won);
    out += ",\"wasted\":" + std::to_string(st.hedges_wasted);
    out += "},\"latency\":";
    st.latency.append_json(out);
    out += "}";
  };
  std::string json = "{\"code\":\"" + code.name() + "\",";
  phase_json(json, "clean", clean);
  json += ",";
  phase_json(json, "hedged", hedged);
  if (run_serial) {
    json += ",";
    phase_json(json, "serial", serial);
  }
  json += ",\"verify_failures\":" + std::to_string(verify_failures) + "}";
  std::printf("%s\n", json.c_str());
  if (args.get("metrics", 0) != 0) {
    std::fprintf(stderr, "%s\n", serve_metrics().to_json().c_str());
  }

  const double clean_p99 = clean.latency.quantile_seconds(0.99);
  const double hedged_p99 = hedged.latency.quantile_seconds(0.99);
  const double serial_p99 = serial.latency.quantile_seconds(0.99);
  std::fprintf(stderr,
               "%s: serve campaign: %zu requests, p99 clean %.3gms hedged "
               "%.3gms serial %.3gms, %zu hedges (%zu won), %zu fallbacks, "
               "%zu verify failure(s)\n",
               code.name().c_str(),
               clean.requests + hedged.requests + serial.requests,
               clean_p99 * 1e3, hedged_p99 * 1e3, serial_p99 * 1e3,
               hedged.hedges_launched, hedged.hedges_won, hedged.fallbacks,
               verify_failures);
  if (verify_failures != 0) return 1;
  if (assert_ratio > 0) {
    const double allowed =
        std::max(clean_p99 * static_cast<double>(assert_ratio) / 100.0,
                 static_cast<double>(assert_floor_us) * 1e-6);
    if (hedged_p99 > allowed) {
      std::fprintf(stderr,
                   "ASSERT FAIL: hedged p99 %.6fs > allowed %.6fs "
                   "(%zu%% of clean p99 %.6fs, floor %zuus)\n",
                   hedged_p99, allowed, assert_ratio, clean_p99,
                   assert_floor_us);
      return 1;
    }
    if (run_serial && hedged_p99 >= serial_p99) {
      std::fprintf(stderr,
                   "ASSERT FAIL: hedged p99 %.6fs does not beat serial "
                   "p99 %.6fs\n",
                   hedged_p99, serial_p99);
      return 1;
    }
  }
  return 0;
}

// Continuous-scrub campaign (docs/ROBUSTNESS.md, "Scrubbing & proactive
// repair"):
//
//   ppm_cli scrub --code <family> [params] [--stripes N] [--block B]
//           [--seed S] [--epochs E] [--permanent P] [--corrupt P]
//           [--rate-kbps K] [--retries N] [--spot-every N]
//           [--dir <journal dir>] [--drill 1] [--metrics 1]
//
// A fleet of --stripes independent stripes sits behind read/write fault
// seams. Latent errors (permanent death, silent corruption; percentages
// per block) *arrive* on a seeded epoch schedule (roll_arrivals); each
// epoch the scrubber sweeps, risk-ranks and repairs, writing repaired
// blocks back through the seam (which heals the fault — the storage is
// actually fixed, not re-detected forever).
//
// The campaign is judged against the schedule alone, like `chaos`:
//   * every scheduled arrival must appear in some sweep's latent set
//     (zero detection misses);
//   * every stripe whose cumulative damage stays within the code's
//     capability at every epoch must end byte-identical to its reference
//     with zero residual damage in a final sweep;
//   * with a journal attached, a closing zero-trust replay must verify
//     every committed claim (zero false "repaired" claims).
// Exit 1 on any miss. Deterministic from --seed.
//
// --drill 1 runs the crash-replay drill instead: plant one latent error,
// crash the repairer between journal intent and commit
// (crash_after_intents), restart with a fresh journal + scrubber, and
// require replay to surface the pending intent with no false claims
// before the re-run repairs and re-verifies cleanly.
int cmd_scrub(const ErasureCode& code, const Args& args) {
  const std::size_t block = args.get("block", 4096);
  const std::size_t stripes = std::max<std::size_t>(1, args.get("stripes", 6));
  const std::size_t epochs = std::max<std::size_t>(1, args.get("epochs", 4));
  const std::size_t retries = args.get("retries", 3);
  const std::uint64_t seed = args.get("seed", 1);
  const std::string dir = args.get("dir", std::string{});
  const bool drill = args.get("drill", 0) != 0;

  io::FaultInjectingSource::ArrivalOptions arrivals;
  arrivals.fail_permanent =
      static_cast<double>(args.get("permanent", 6)) / 100.0;
  arrivals.corrupt = static_cast<double>(args.get("corrupt", 8)) / 100.0;
  arrivals.epochs = epochs;

  const std::size_t total = code.total_blocks();

  // The fleet: per stripe, mutable storage (the "disks"), a decode
  // scratch stripe, reference snapshot + digests, and the store/fault
  // seam the scrubber patrols through.
  struct Member {
    std::unique_ptr<Stripe> storage;
    std::unique_ptr<Stripe> scratch;
    std::vector<std::uint8_t> snap;
    std::vector<std::uint32_t> digests;
    std::unique_ptr<io::MemoryBlockStore> store;
    std::unique_ptr<io::FaultInjectingSource> seam;
  };
  const TraditionalDecoder trad(code);
  Rng fill_rng(seed + 17);
  std::vector<Member> fleet(stripes);
  for (Member& m : fleet) {
    m.storage = std::make_unique<Stripe>(code, block);
    m.storage->fill_data(fill_rng);
    if (!trad.encode(m.storage->block_ptrs(), block)) return 1;
    m.snap = m.storage->snapshot();
    m.digests.resize(total);
    for (std::size_t b = 0; b < total; ++b) {
      m.digests[b] = crc32(m.storage->block(b), block);
    }
    m.scratch = std::make_unique<Stripe>(code, block);
    m.store = std::make_unique<io::MemoryBlockStore>(
        m.storage->block_ptrs(), total, block);
    m.seam = std::make_unique<io::FaultInjectingSource>(*m.store, *m.store);
  }

  Codec codec(code);
  scrub::ScrubOptions sopt;
  sopt.sweep_read_retries = retries;
  sopt.spot_check_every = args.get("spot-every", 0);
  sopt.rate_bytes_per_sec =
      static_cast<double>(args.get("rate-kbps", 0)) * 1024.0;
  sopt.repair.max_read_retries = retries;

  const auto add_targets = [&](scrub::Scrubber& scrubber) {
    for (std::size_t i = 0; i < stripes; ++i) {
      scrub::ScrubTarget target;
      target.source = fleet[i].seam.get();
      target.writer = fleet[i].seam.get();
      target.blocks = fleet[i].scratch->block_ptrs();
      target.expected_crc = fleet[i].digests;
      target.stripe_id = "stripe-" + std::to_string(i);
      scrubber.add_target(std::move(target));
    }
  };

  std::size_t failures = 0;
  const auto flag = [&](const char* what) {
    ++failures;
    std::fprintf(stderr, "VERIFY FAIL: %s\n", what);
  };
  const auto print_metrics = [&] {
    if (args.get("metrics", 0) != 0) {
      std::fprintf(stderr, "%s\n", scrub_metrics().to_json().c_str());
    }
  };

  if (drill) {
    if (dir.empty()) {
      std::fprintf(stderr, "scrub --drill requires --dir <journal dir>\n");
      return 2;
    }
    // The drill is a self-contained simulation: start from an empty
    // journal so records from an earlier drill cannot be mistaken for
    // this run's crash evidence.
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    // Plant one silent corruption, then crash between intent and commit.
    const std::size_t victim = 1 % total;
    io::FaultSpec rot;
    rot.corrupt = true;
    rot.corrupt_offset = 3 % block;
    rot.corrupt_bytes = 8;
    fleet[0].seam->set_fault(victim, rot);
    {
      scrub::ScrubOptions crash_opt = sopt;
      crash_opt.crash_after_intents = 1;
      scrub::RepairJournal wal(dir);
      scrub::Scrubber crasher(codec, crash_opt, &wal);
      add_targets(crasher);
      const scrub::CycleReport cycle = crasher.run_cycle();
      if (cycle.sweep.latent_total == 0) flag("drill: corruption not detected");
      if (!cycle.repair.crashed_for_test) flag("drill: crash hook never fired");
      if (cycle.repair.completed != 0) {
        flag("drill: a repair committed before the crash");
      }
    }
    // "Restart": fresh journal + scrubber over the same fleet. Replay
    // must surface the pending intent, claim nothing repaired, and hand
    // the outstanding damage to the next cycle.
    scrub::RepairJournal wal(dir);
    scrub::Scrubber scrubber(codec, sopt, &wal);
    add_targets(scrubber);
    const scrub::ReplayReport replay = scrubber.replay();
    if (replay.pending_intents == 0) flag("drill: no pending intent found");
    if (replay.false_claims != 0) flag("drill: false repaired claim");
    if (replay.outstanding.empty()) {
      flag("drill: outstanding damage not surfaced");
    }
    const scrub::CycleReport cycle = scrubber.run_cycle();
    if (cycle.repair.completed == 0) {
      flag("drill: post-restart repair did not complete");
    }
    if (!fleet[0].storage->equals(fleet[0].snap)) {
      flag("drill: repaired stripe not byte-identical");
    }
    const scrub::ReplayReport replay2 = scrubber.replay();
    if (replay2.false_claims != 0) flag("drill: committed claim re-verify");
    if (!replay2.outstanding.empty()) flag("drill: damage survived repair");
    std::printf(
        "{\"code\":\"%s\",\"drill\":true,\"pending_intents\":%zu,"
        "\"false_claims\":%zu,\"verified_commits\":%zu,"
        "\"verify_failures\":%zu}\n",
        code.name().c_str(), replay.pending_intents,
        replay.false_claims + replay2.false_claims, replay2.verified_commits,
        failures);
    print_metrics();
    return failures == 0 ? 0 : 1;
  }

  // Roll every stripe's arrival schedule from one seeded stream; the
  // schedule is the oracle everything below is judged against.
  Rng rng(seed);
  for (Member& m : fleet) m.seam->roll_arrivals(arrivals, rng);
  std::size_t scheduled = 0;
  for (const Member& m : fleet) scheduled += m.seam->arrivals().size();

  std::optional<scrub::RepairJournal> journal;
  if (!dir.empty()) {
    // The campaign owns its journal dir: records from an earlier run
    // would be replayed against this run's fleet and judged as stale.
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
    journal.emplace(dir);
  }
  scrub::Scrubber scrubber(codec, sopt,
                           journal.has_value() ? &*journal : nullptr);
  add_targets(scrubber);

  std::set<std::pair<std::size_t, std::size_t>> detected;
  std::size_t landed = 0;
  std::size_t repairs_attempted = 0;
  std::size_t repairs_completed = 0;
  std::size_t repairs_partial = 0;
  std::size_t repairs_failed = 0;
  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    for (Member& m : fleet) landed += m.seam->advance_epoch();
    const scrub::CycleReport cycle = scrubber.run_cycle();
    for (const scrub::StripeDamage& damage : cycle.sweep.stripes) {
      for (const std::size_t b : damage.latent) {
        detected.insert({damage.stripe, b});
      }
    }
    repairs_attempted += cycle.repair.attempted;
    repairs_completed += cycle.repair.completed;
    repairs_partial += cycle.repair.partial;
    repairs_failed += cycle.repair.failed;
  }
  const scrub::SweepReport final_sweep = scrubber.sweep();

  // Judge 1: zero detection misses. Every scheduled arrival was
  // installed before its epoch's sweep ran, so it must have been seen.
  std::size_t missed = 0;
  for (std::size_t i = 0; i < stripes; ++i) {
    for (const auto& arrival : fleet[i].seam->arrivals()) {
      if (detected.count({i, arrival.block}) == 0) {
        ++missed;
        std::fprintf(stderr,
                     "VERIFY FAIL: stripe %zu block %zu (epoch %zu) "
                     "was never detected\n",
                     i, arrival.block, arrival.epoch);
        ++failures;
      }
    }
  }

  // Judge 2: schedule-derived repair expectation. Replay the arrival
  // schedule through the capability model: damage accumulates per epoch
  // and clears whenever the cumulative set is decodable (that is what a
  // correct scrub cycle must achieve, since writebacks heal the seam).
  // A stripe that ever exceeds capability is excused from then on —
  // partial recovery there is best-effort.
  for (std::size_t i = 0; i < stripes; ++i) {
    std::vector<std::size_t> active;
    bool excused = false;
    for (std::size_t epoch = 1; epoch <= epochs && !excused; ++epoch) {
      for (const auto& arrival : fleet[i].seam->arrivals()) {
        if (arrival.epoch == epoch) active.push_back(arrival.block);
      }
      const FailureScenario sc(active);
      if (sc.count() <= code.check_rows() &&
          codec.plan_for(sc) != nullptr) {
        active.clear();
      } else if (!sc.empty()) {
        excused = true;
      }
    }
    if (excused) continue;
    if (!fleet[i].storage->equals(fleet[i].snap)) {
      std::fprintf(stderr,
                   "VERIFY FAIL: within-capability stripe %zu not "
                   "byte-identical after repair\n",
                   i);
      ++failures;
    }
    if (!final_sweep.stripes[i].latent.empty()) {
      std::fprintf(stderr,
                   "VERIFY FAIL: stripe %zu has residual damage after "
                   "the campaign\n",
                   i);
      ++failures;
    }
  }

  // Judge 3: with a journal, every committed claim must re-verify.
  std::size_t false_claims = 0;
  std::size_t verified_commits = 0;
  if (journal.has_value()) {
    const scrub::ReplayReport replay = scrubber.replay();
    false_claims = replay.false_claims;
    verified_commits = replay.verified_commits;
    if (false_claims != 0) flag("journal replay found false claims");
  }

  std::fprintf(stderr,
               "%s: scrub campaign: %zu stripe(s) x %zu epoch(s), %zu "
               "arrival(s) (%zu landed), %zu detected, %zu missed, "
               "repairs %zu/%zu complete, %zu verify failure(s)\n",
               code.name().c_str(), stripes, epochs, scheduled, landed,
               detected.size(), missed, repairs_completed, repairs_attempted,
               failures);
  std::printf(
      "{\"code\":\"%s\",\"stripes\":%zu,\"epochs\":%zu,\"arrivals\":%zu,"
      "\"detected\":%zu,\"missed\":%zu,\"repairs\":{\"attempted\":%zu,"
      "\"completed\":%zu,\"partial\":%zu,\"failed\":%zu},"
      "\"journal\":{\"verified_commits\":%zu,\"false_claims\":%zu},"
      "\"rate_limit_waits\":%zu,\"verify_failures\":%zu}\n",
      code.name().c_str(), stripes, epochs, scheduled, detected.size(),
      missed, repairs_attempted, repairs_completed, repairs_partial,
      repairs_failed, verified_commits, false_claims,
      scrubber.bucket().waits(), failures);
  print_metrics();
  return failures == 0 ? 0 : 1;
}

int cmd_selftest(const ErasureCode& code, const Args& args) {
  const std::size_t block = args.get("block", 65536);
  ScenarioGenerator gen(args.get("seed", 1));
  Stripe stripe(code, block);
  Rng rng(args.get("seed", 1) + 2);
  stripe.fill_data(rng);
  const TraditionalDecoder trad(code);
  if (!trad.encode(stripe.block_ptrs(), block)) {
    std::printf("FAIL: encode\n");
    return 1;
  }
  if (!stripe_consistent(code, stripe.block_ptrs(), block)) {
    std::printf("FAIL: syndrome after encode\n");
    return 1;
  }
  const auto snap = stripe.snapshot();
  const PpmDecoder ppm_dec(code);
  for (int wave = 0; wave < 5; ++wave) {
    const FailureScenario sc = make_scenario(code, args, gen);
    stripe.erase(sc);
    const auto res = ppm_dec.decode(sc, stripe.block_ptrs(), block);
    if (!res || !stripe.equals(snap)) {
      std::printf("FAIL: decode wave %d\n", wave);
      return 1;
    }
  }
  std::printf("OK: %s — encode + 5 decode waves verified\n",
              code.name().c_str());
  return 0;
}

// Persistent plan store operations (docs/PLAN_STORE.md):
//
//   store build --dir D [--sweep N|--scenario ...]   plan, verify, persist
//   store ls    --dir D                              list records on disk
//   store check --dir D                              zero-trust re-verify all
//   store gc    --dir D                              drop quarantined + tmp
//
// `check` exits 1 unless every record re-proves sound AND at least one
// record warmed a fresh Codec's plan cache — the CI restart drill.
int cmd_store(const ErasureCode& code, const Args& args) {
  const std::string action = args.subcommand;
  const std::string dir = args.get("dir", std::string{});
  if (dir.empty()) {
    std::fprintf(stderr, "store %s: --dir is required\n", action.c_str());
    return 2;
  }

  if (action == "build") {
    Codec::Options copts;
    copts.cache_capacity = args.get("capacity", 4096);
    Codec codec(code, copts);
    codec.attach_store(dir);
    std::size_t built = 0;
    std::size_t undecodable = 0;
    for_each_selected_scenario(code, args, [&](const FailureScenario& sc) {
      if (codec.plan_for(sc) == nullptr) {
        ++undecodable;
      } else {
        ++built;
      }
    });
    const std::uint64_t stored = codec.metrics().planstore_stores.value();
    std::fprintf(stderr, "%s: %zu plan(s) built (%zu undecodable), %llu "
                 "persisted to %s\n",
                 code.name().c_str(), built, undecodable,
                 static_cast<unsigned long long>(stored), dir.c_str());
    std::printf("{\"built\":%zu,\"undecodable\":%zu,\"stored\":%llu}\n",
                built, undecodable,
                static_cast<unsigned long long>(stored));
    return built > 0 ? 0 : 1;
  }

  if (action == "ls") {
    const planstore::PlanStore store(dir);
    std::size_t records = 0;
    std::size_t quarantined = 0;
    for (const auto& entry : store.list()) {
      std::printf("%10ju  %s%s\n", entry.bytes, entry.filename.c_str(),
                  entry.quarantined ? "  [QUARANTINED]" : "");
      ++(entry.quarantined ? quarantined : records);
    }
    std::fprintf(stderr, "%zu record(s), %zu quarantined\n", records,
                 quarantined);
    return 0;
  }

  if (action == "check") {
    planstore::PlanStore store(dir);
    const auto report = store.check(code);
    // Restart drill: a fresh Codec must be able to warm its cache from
    // what survived the check.
    Codec::Options copts;
    copts.cache_capacity = args.get("capacity", 4096);
    Codec codec(code, copts);
    codec.attach_store(dir);
    const std::size_t warmed = codec.warm();
    const std::uint64_t warm_hits =
        codec.metrics().planstore_warm_hits.value();
    std::printf("{\"checked\":%zu,\"verified\":%zu,\"quarantined\":%zu,"
                "\"warm_hits\":%llu}\n",
                report.checked, report.verified, report.quarantined,
                static_cast<unsigned long long>(warm_hits));
    if (report.checked == 0) {
      std::fprintf(stderr, "FAIL: store has no records for %s\n",
                   code.name().c_str());
      return 1;
    }
    if (report.quarantined > 0 || report.verified != report.checked) {
      std::fprintf(stderr, "FAIL: %zu of %zu record(s) quarantined\n",
                   report.quarantined, report.checked);
      return 1;
    }
    std::fprintf(stderr, "PASS: %zu record(s) re-verified, %zu warmed\n",
                 report.verified, warmed);
    return 0;
  }

  if (action == "gc") {
    planstore::PlanStore store(dir);
    const auto report = store.gc(args.get("keep-quarantined", 0));
    std::printf("{\"removed_quarantined\":%zu,\"removed_tmp\":%zu}\n",
                report.removed_quarantined, report.removed_tmp);
    return 0;
  }

  std::fprintf(stderr, "usage: ppm_cli store {build|ls|check|gc} --dir <d> "
               "[--code ... --sweep N] [--keep-quarantined N]\n");
  return 2;
}

// --- ppm_cli search — coefficient certification & search (search_coeff/).
// Dispatched before make_code: certifying does not require (and must not
// pay for) a full code construction.

coeffsearch::Geometry search_geometry(const Args& args) {
  const std::size_t n = args.get("n", 8);
  const std::size_t r = args.get("r", 16);
  return coeffsearch::Geometry{
      n, r, args.get("m", 2), args.get("s", 2),
      static_cast<unsigned>(args.get("w", SDCode::recommended_width(n, r)))};
}

coeffsearch::CertifyOptions search_certify_options(const Args& args) {
  coeffsearch::CertifyOptions opts;
  opts.exact_class_limit = args.get("exact-limit", opts.exact_class_limit);
  opts.stratified_classes = args.get("classes", opts.stratified_classes);
  opts.plan_budget = args.get("plan-budget", opts.plan_budget);
  opts.optimize_xor = args.get("optimize", 1) != 0;
  opts.allow_deficient = args.get("allow-deficient", 0) != 0;
  opts.threads = static_cast<unsigned>(args.get("threads", 0));
  return opts;
}

std::vector<gf::Element> parse_coeffs(const std::string& csv) {
  std::vector<gf::Element> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t end = csv.find(',', pos);
    if (end == std::string::npos) end = csv.size();
    out.push_back(static_cast<gf::Element>(
        std::strtoull(csv.substr(pos, end - pos).c_str(), nullptr, 10)));
    pos = end + 1;
  }
  return out;
}

void print_search_metrics(const Args& args) {
  if (args.get("metrics", 0) != 0) {
    std::printf("%s\n", search_metrics().to_json().c_str());
  }
}

int cmd_search(const Args& args) {
  const std::string action = args.subcommand;
  const std::string dir = args.get("dir", std::string{});

  if (action == "certify") {
    const coeffsearch::Geometry g = search_geometry(args);
    const std::string csv = args.get("coeffs", std::string{});
    if (csv.empty()) {
      std::fprintf(stderr, "search certify: --coeffs a,b,... is required\n");
      return 2;
    }
    const std::vector<gf::Element> coeffs = parse_coeffs(csv);
    const coeffsearch::CertifyResult res =
        coeffsearch::certify_tuple(g, coeffs, search_certify_options(args));
    if (!res.certified) {
      std::fprintf(stderr, "REFUTED: %s\n", res.reason.c_str());
      std::string reason = res.reason;  // keep the stdout JSON escape-free
      for (char& c : reason)
        if (c == '"' || c == '\\' || c == '\n') c = '\'';
      std::printf("{\"certified\":false,\"reason\":\"%s\"}\n", reason.c_str());
      print_search_metrics(args);
      return 1;
    }
    std::printf("%s\n", res.cert.to_json().c_str());
    std::fprintf(stderr,
                 "CERTIFIED: %llu/%llu canonical classes rank-proven "
                 "(%s), %llu plan-proven, %llu deficient\n",
                 static_cast<unsigned long long>(res.cert.rank_checked),
                 static_cast<unsigned long long>(res.cert.canonical),
                 res.cert.exact ? "exact" : "stratified",
                 static_cast<unsigned long long>(res.cert.plans_proven),
                 static_cast<unsigned long long>(res.cert.deficient_classes));
    if (!dir.empty()) {
      coeffsearch::CertStore store(dir);
      if (!store.put(res.cert)) {
        std::fprintf(stderr, "FAIL: could not persist certificate\n");
        return 1;
      }
      std::fprintf(stderr, "persisted to %s/%s\n", dir.c_str(),
                   coeffsearch::CertStore::record_filename(g).c_str());
    }
    print_search_metrics(args);
    return 0;
  }

  if (action == "best") {
    const coeffsearch::Geometry g = search_geometry(args);
    coeffsearch::SearchOptions opts;
    opts.candidate_budget = args.get("candidates", 512);
    opts.certify_budget = args.get("certify-budget", 4);
    opts.seed = args.get("seed", 0);
    opts.threads = static_cast<unsigned>(args.get("threads", 0));
    opts.certify = search_certify_options(args);
    const coeffsearch::SearchResult res = coeffsearch::search_best(g, opts);
    std::string out = "{\"found\":";
    out += res.found ? "true" : "false";
    out += ",\"candidates\":" + std::to_string(res.candidates_considered);
    out += ",\"rank_pruned\":" + std::to_string(res.rank_pruned);
    out += ",\"certified\":" + std::to_string(res.certified);
    out += ",\"refuted\":" + std::to_string(res.refuted);
    if (res.found) {
      out += ",\"tuple\":[";
      for (std::size_t i = 0; i < res.best.tuple.size(); ++i) {
        if (i != 0) out += ',';
        out += std::to_string(res.best.tuple[i]);
      }
      out += "],\"worst_case\":{\"critical_path\":" +
             std::to_string(res.best.cert.worst_case.critical_path) +
             ",\"work\":" + std::to_string(res.best.cert.worst_case.work) +
             ",\"optimized_ops\":" +
             std::to_string(res.best.cert.worst_case.optimized_ops) +
             "},\"pareto\":" + std::to_string(res.pareto.size());
    }
    out += '}';
    std::printf("%s\n", out.c_str());
    if (!res.found) {
      std::fprintf(stderr, "NO TUPLE FOUND: %s\n", res.reason.c_str());
      print_search_metrics(args);
      return 1;
    }
    std::fprintf(stderr, "best tuple of %llu certified (pareto %zu)\n",
                 static_cast<unsigned long long>(res.certified),
                 res.pareto.size());
    if (!dir.empty()) {
      coeffsearch::CertStore store(dir);
      if (!store.put(res.best.cert)) {
        std::fprintf(stderr, "FAIL: could not persist certificate\n");
        return 1;
      }
      std::fprintf(stderr, "persisted to %s/%s\n", dir.c_str(),
                   coeffsearch::CertStore::record_filename(g).c_str());
    }
    print_search_metrics(args);
    return 0;
  }

  if (dir.empty()) {
    std::fprintf(stderr, "search %s: --dir is required\n", action.c_str());
    return 2;
  }

  if (action == "ls") {
    const coeffsearch::CertStore store(dir);
    std::size_t records = 0;
    std::size_t quarantined = 0;
    for (const auto& entry : store.list()) {
      std::printf("%10ju  %s%s\n", entry.bytes, entry.filename.c_str(),
                  entry.quarantined ? "  [QUARANTINED]" : "");
      ++(entry.quarantined ? quarantined : records);
    }
    std::fprintf(stderr, "%zu record(s), %zu quarantined\n", records,
                 quarantined);
    return 0;
  }

  if (action == "check") {
    coeffsearch::CertStore store(dir);
    const auto report = store.check();
    std::printf("{\"checked\":%zu,\"verified\":%zu,\"quarantined\":%zu}\n",
                report.checked, report.verified, report.quarantined);
    print_search_metrics(args);
    if (report.checked == 0) {
      std::fprintf(stderr, "FAIL: store has no certificates\n");
      return 1;
    }
    if (report.quarantined > 0 || report.verified != report.checked) {
      std::fprintf(stderr, "FAIL: %zu of %zu certificate(s) quarantined\n",
                   report.quarantined, report.checked);
      return 1;
    }
    std::fprintf(stderr, "PASS: %zu certificate(s) re-proven\n",
                 report.verified);
    return 0;
  }

  if (action == "gc") {
    coeffsearch::CertStore store(dir);
    const auto report = store.gc(args.get("keep-quarantined", 0));
    std::printf("{\"removed_quarantined\":%zu,\"removed_tmp\":%zu}\n",
                report.removed_quarantined, report.removed_tmp);
    return 0;
  }

  std::fprintf(stderr,
               "usage: ppm_cli search {certify|best|ls|check|gc} "
               "[--n N --r R --m M --s S --w W] [--coeffs a,b,...] "
               "[--dir <d>] [--candidates N] [--plan-budget N] "
               "[--exact-limit N] [--classes N] [--allow-deficient 1] "
               "[--keep-quarantined N] [--metrics 1]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.command.empty()) {
    std::fprintf(stderr,
                 "usage: %s {info|costs|bench|batch|selftest|sim|verify|"
                 "analyze|store|chaos|serve|scrub|search} "
                 "--code {sd|pmds|lrc|xorbas|rs|crs|evenodd|rdp|star} "
                 "[params]\n"
                 "       %s store {build|ls|check|gc} --dir <dir> [params]\n"
                 "       %s chaos --code <family> [--sweep N] [--seed S] "
                 "[--rounds R] [--permanent P] [--transient P] [--corrupt P] "
                 "[--straggle P] [--retries N]\n"
                 "       %s serve --code <family> [--sweep N] [--seed S] "
                 "[--rounds R] [--requests N] [--straggle P] [--delay-us U] "
                 "[--serial 0|1] [--assert-ratio P] [--scrub-rate-kbps K]\n"
                 "       %s scrub --code <family> [--stripes N] [--epochs E] "
                 "[--seed S] [--permanent P] [--corrupt P] [--rate-kbps K] "
                 "[--dir <d>] [--drill 1]\n"
                 "       %s search {certify|best|ls|check|gc} "
                 "[--n N --r R --m M --s S --w W] [--coeffs a,b,...] "
                 "[--dir <d>]\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  try {
    // `search` works on a geometry, not a constructed code — dispatch
    // before make_code so certification costs are only paid once,
    // inside the search pipeline itself.
    if (args.command == "search") return cmd_search(args);
    const auto code = make_code(args);
    if (args.command == "info") return cmd_info(*code);
    if (args.command == "costs") return cmd_costs(*code, args);
    if (args.command == "bench") return cmd_bench(*code, args);
    if (args.command == "batch") return cmd_batch(*code, args);
    if (args.command == "sim") return cmd_sim(*code, args);
    if (args.command == "selftest") return cmd_selftest(*code, args);
    if (args.command == "verify") return cmd_verify(*code, args);
    if (args.command == "analyze") return cmd_analyze(*code, args);
    if (args.command == "store") return cmd_store(*code, args);
    if (args.command == "chaos") return cmd_chaos(*code, args);
    if (args.command == "serve") return cmd_serve(*code, args);
    if (args.command == "scrub") return cmd_scrub(*code, args);
    std::fprintf(stderr, "unknown command: %s\n", args.command.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
